//! Deterministic fault injection for the execution engine.
//!
//! A [`FaultPlan`] is a time-sorted list of [`FaultEvent`]s the engine
//! replays during a run. Injection is fully deterministic: the same plan on
//! the same workload and policy produces the same [`crate::RunResult`],
//! which is what makes fault runs reproducible and diffable against clean
//! runs (see the `faults` CLI subcommand and the fault proptests).
//!
//! Mechanics, as applied by the engine:
//!
//! * [`FaultEvent::ProcStall`] — while `now` lies in a processor's stall
//!   window, the engine issues that processor no grants; its grant request
//!   is deferred to the window end. In-flight grants run to completion (the
//!   freeze models a stalled *processor*, not revoked memory).
//! * [`FaultEvent::LatencySpike`] — grants *starting* inside the window
//!   simulate misses at cost `s × factor` for their whole duration (the
//!   engine simulates a grant in one shot, so the penalty at grant start
//!   applies throughout; windows ≥ one grant length capture the intent).
//! * [`FaultEvent::MemoryPressure`] — from delivery on, the engine enforces
//!   the shrunken budget on every grant, whether or not
//!   [`crate::EngineOpts::memory_limit`] was set; an unhardened policy that
//!   keeps allocating against the old `k` gets
//!   [`crate::EngineError::MemoryLimitExceeded`].
//!
//! Every event is also delivered to the policy via
//! [`parapage_core::BoxAllocator::on_fault`] when its timestamp is reached,
//! before any grant decision at that time — the hook degraded-mode policies
//! (e.g. `HardenedAllocator`) react to.

use parapage_cache::Time;
use parapage_core::FaultEvent;

/// A time-sorted schedule of faults to inject into one engine run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Builds a plan, sorting the events by their effect time (stable, so
    /// equal-time events keep their given order).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(FaultEvent::at);
        FaultPlan { events }
    }

    /// The empty plan: a clean run.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// The scheduled events, in delivery order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The engine's per-run cursor over a [`FaultPlan`].
pub(crate) struct FaultCursor<'a> {
    plan: &'a FaultPlan,
    next: usize,
}

impl<'a> FaultCursor<'a> {
    pub(crate) fn new(plan: &'a FaultPlan) -> Self {
        FaultCursor { plan, next: 0 }
    }

    /// Index of the next undelivered event (for checkpointing).
    pub(crate) fn position(&self) -> usize {
        self.next
    }

    /// Restores the delivery position from a checkpoint.
    pub(crate) fn set_position(&mut self, next: usize) {
        self.next = next;
    }

    /// Pops the next undelivered event with effect time ≤ `now`.
    pub(crate) fn pop_due(&mut self, now: Time) -> Option<FaultEvent> {
        let ev = *self.plan.events.get(self.next)?;
        if ev.at() <= now {
            self.next += 1;
            Some(ev)
        } else {
            None
        }
    }

    /// Latest end of any stall window covering processor `x` at `now`
    /// (windows are few; a linear scan per grant request is fine).
    pub(crate) fn stalled_until(&self, x: usize, now: Time) -> Option<Time> {
        self.plan
            .events
            .iter()
            .filter_map(|ev| match *ev {
                FaultEvent::ProcStall { proc, from, until }
                    if proc.idx() == x && from <= now && now < until =>
                {
                    Some(until)
                }
                _ => None,
            })
            .max()
    }

    /// The latency multiplier in effect at `now` (the max over active spike
    /// windows; 1 when none is active).
    pub(crate) fn latency_factor(&self, now: Time) -> u64 {
        self.plan
            .events
            .iter()
            .filter_map(|ev| match *ev {
                FaultEvent::LatencySpike {
                    from,
                    until,
                    factor,
                } if from <= now && now < until => Some(factor.max(1)),
                _ => None,
            })
            .max()
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapage_cache::ProcId;

    fn plan() -> FaultPlan {
        FaultPlan::new(vec![
            FaultEvent::MemoryPressure {
                at: 50,
                new_limit: 8,
            },
            FaultEvent::ProcStall {
                proc: ProcId(1),
                from: 10,
                until: 30,
            },
            FaultEvent::LatencySpike {
                from: 20,
                until: 40,
                factor: 4,
            },
        ])
    }

    #[test]
    fn events_are_sorted_by_time() {
        let p = plan();
        let times: Vec<Time> = p.events().iter().map(FaultEvent::at).collect();
        assert_eq!(times, vec![10, 20, 50]);
    }

    #[test]
    fn cursor_delivers_in_order() {
        let p = plan();
        let mut c = FaultCursor::new(&p);
        assert!(c.pop_due(5).is_none());
        assert!(matches!(c.pop_due(25), Some(FaultEvent::ProcStall { .. })));
        assert!(matches!(
            c.pop_due(25),
            Some(FaultEvent::LatencySpike { .. })
        ));
        assert!(c.pop_due(25).is_none());
        assert!(matches!(
            c.pop_due(100),
            Some(FaultEvent::MemoryPressure { .. })
        ));
        assert!(c.pop_due(100).is_none());
    }

    #[test]
    fn stall_windows_cover_half_open_ranges() {
        let p = plan();
        let c = FaultCursor::new(&p);
        assert_eq!(c.stalled_until(1, 10), Some(30));
        assert_eq!(c.stalled_until(1, 29), Some(30));
        assert_eq!(c.stalled_until(1, 30), None);
        assert_eq!(c.stalled_until(0, 15), None);
    }

    #[test]
    fn latency_factor_is_window_scoped() {
        let p = plan();
        let c = FaultCursor::new(&p);
        assert_eq!(c.latency_factor(19), 1);
        assert_eq!(c.latency_factor(20), 4);
        assert_eq!(c.latency_factor(39), 4);
        assert_eq!(c.latency_factor(40), 1);
    }

    #[test]
    fn overlapping_spikes_take_the_max() {
        let p = FaultPlan::new(vec![
            FaultEvent::LatencySpike {
                from: 0,
                until: 10,
                factor: 2,
            },
            FaultEvent::LatencySpike {
                from: 5,
                until: 15,
                factor: 8,
            },
        ]);
        let c = FaultCursor::new(&p);
        assert_eq!(c.latency_factor(7), 8);
        assert_eq!(c.latency_factor(12), 8);
        assert_eq!(c.latency_factor(2), 2);
    }
}
