//! Crash recovery: run the engine in bounded epochs under panic isolation,
//! resuming from the last good snapshot after a crash.
//!
//! The [`Supervisor`] wraps the steppable [`Engine`] in a recovery loop:
//!
//! 1. Step the engine for one *epoch* (a bounded number of events) inside
//!    [`std::panic::catch_unwind`], with a wall-clock watchdog.
//! 2. At each epoch boundary, checkpoint into a
//!    [`CheckpointStore`](crate::wal::CheckpointStore): by default an
//!    O(changes) WAL delta record appended after the current base snapshot
//!    (see [`crate::wal`]), with a fresh O(state) full snapshot installed
//!    as a new base every [`SupervisorOpts::full_snapshot_every`] epochs —
//!    or every epoch when [`SupervisorOpts::wal`] is off.
//! 3. On a crash (panic) or watchdog expiry, discard the poisoned engine
//!    and policy, wait out an exponential backoff, build a **fresh** policy
//!    from the caller's factory, and recover from the store: decode the
//!    base, replay the delta log, and truncate at the first record whose
//!    frame, digest, or chain breaks (a torn write loses only the tail; an
//!    unusable base restarts from scratch). The first epoch boundary after
//!    a recovery installs a fresh base, so new records never append after
//!    a torn tail.
//! 4. Give up with [`SupervisorError::RetriesExhausted`] once the crash
//!    budget is spent.
//!
//! Recovery is *exact*: because a snapshot captures the run's full dynamic
//! state — engine counters, event heap, caches, fault-plan position, and
//! the policy's own state including its RNG — a recovered run produces the
//! same [`RunResult`] and the same trace stream as an uninterrupted one.
//! Events re-emitted while replaying the gap between the last checkpoint
//! and the crash are deduplicated against the engine's monotone emission
//! counter, so the caller's [`TraceSink`] sees every event exactly once.
//! The `parapage-conform` resume checker and the `parapage chaos` CLI
//! subcommand verify this byte-for-byte.
//!
//! Deterministic crash injection is built in: a [`CrashPlan`] names engine
//! ticks at which the supervised run panics (each at most once per
//! supervised run, however often the surrounding ticks replay), which is
//! how the chaos harness exercises every recovery path without randomness.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use parapage_cache::{Cache, Checkpoint, PageId};
use parapage_core::{BoxAllocator, ModelParams};

use crate::engine::{Engine, EngineOpts};
use crate::error::EngineError;
use crate::fault::FaultPlan;
use crate::metrics::RunResult;
use crate::snapshot::SnapshotError;
use crate::trace::{TraceEvent, TraceSink};
use crate::wal::{recover, CheckpointStore, MemStore, WalCursor};

/// Capped exponential backoff: `base * 2^attempt`, saturating at `cap`.
/// `attempt` is 0-based (the first retry waits `base`). This is the one
/// backoff the workspace uses — the supervisor between crash recoveries,
/// and the resilient wire client between reconnects — so retry cadence is
/// tuned in exactly one place.
pub fn capped_backoff(base: Duration, cap: Duration, attempt: u32) -> Duration {
    base.saturating_mul(1u32 << attempt.min(16)).min(cap)
}

/// [`capped_backoff`] with deterministic jitter: the delay is scaled into
/// `[½, 1]` of the capped value by a pure function of `(seed, attempt)`,
/// so a thundering herd of clients with distinct seeds de-synchronizes
/// while any single schedule stays exactly reproducible.
pub fn jittered_backoff(base: Duration, cap: Duration, attempt: u32, seed: u64) -> Duration {
    let full = capped_backoff(base, cap, attempt);
    let mix = parapage_cache::fnv1a64_seeded(seed, &attempt.to_le_bytes());
    // Map the top 16 mix bits onto [1/2, 1] of the full delay.
    let scale = 0.5 + 0.5 * ((mix >> 48) as f64 / 65535.0);
    full.mul_f64(scale)
}

/// Deterministic crashpoints: engine ticks at which the supervised run
/// panics, each firing at most once per supervised run.
#[derive(Clone, Debug, Default)]
pub struct CrashPlan {
    ticks: Vec<u64>,
}

impl CrashPlan {
    /// A plan crashing at the given engine ticks (sorted, deduplicated).
    pub fn at_ticks(mut ticks: Vec<u64>) -> Self {
        ticks.sort_unstable();
        ticks.dedup();
        CrashPlan { ticks }
    }

    /// The empty plan: no injected crashes.
    pub fn none() -> Self {
        CrashPlan::default()
    }

    /// The scheduled crash ticks.
    pub fn ticks(&self) -> &[u64] {
        &self.ticks
    }
}

/// Supervisor tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct SupervisorOpts {
    /// Events per epoch: the snapshot cadence. Smaller epochs bound the
    /// replay after a crash but checkpoint more often.
    pub epoch_ticks: u64,
    /// Crashes tolerated before [`SupervisorError::RetriesExhausted`].
    pub max_retries: u32,
    /// First backoff delay; doubles per consecutive crash.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Per-attempt wall-clock deadline; expiry is treated as a crash.
    pub watchdog: Duration,
    /// Suppress the default panic hook while injected crashes are caught
    /// (they would otherwise spray backtraces over test output). Real
    /// panics still propagate as crashes either way.
    pub silence_panics: bool,
    /// Checkpoint incrementally: append an O(changes) WAL delta record at
    /// each epoch boundary instead of encoding the full O(state) snapshot
    /// (default `true`; see [`crate::wal`]). Off, every boundary installs
    /// a full snapshot — the pre-WAL behaviour.
    pub wal: bool,
    /// With [`SupervisorOpts::wal`] on, install a fresh full snapshot as a
    /// new base every this many epochs, bounding recovery-scan length.
    pub full_snapshot_every: u64,
}

impl Default for SupervisorOpts {
    fn default() -> Self {
        SupervisorOpts {
            epoch_ticks: 256,
            max_retries: 8,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
            watchdog: Duration::from_secs(30),
            silence_panics: true,
            wal: true,
            full_snapshot_every: 16,
        }
    }
}

/// Why a supervised run failed for good.
#[derive(Clone, Debug, PartialEq)]
pub enum SupervisorError {
    /// The engine returned a typed error. Engine errors are deterministic
    /// (a policy or configuration bug, not a transient fault), so the
    /// supervisor fails fast instead of retrying.
    Engine(EngineError),
    /// A snapshot failed to encode, decode, or restore.
    Snapshot(SnapshotError),
    /// The crash budget is spent.
    RetriesExhausted {
        /// Crashes observed (including the final one).
        crashes: u32,
        /// Panic payload (or watchdog notice) of the last crash.
        last_crash: String,
    },
}

impl std::fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SupervisorError::Engine(e) => write!(f, "engine error: {e}"),
            SupervisorError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            SupervisorError::RetriesExhausted {
                crashes,
                last_crash,
            } => write!(
                f,
                "gave up after {crashes} crashes; last crash: {last_crash}"
            ),
        }
    }
}

impl std::error::Error for SupervisorError {}

impl From<EngineError> for SupervisorError {
    fn from(e: EngineError) -> Self {
        SupervisorError::Engine(e)
    }
}

impl From<SnapshotError> for SupervisorError {
    fn from(e: SnapshotError) -> Self {
        SupervisorError::Snapshot(e)
    }
}

/// A snapshot of the supervised run's progress, handed to the epoch
/// control callback of [`Supervisor::run_controlled`] at each epoch
/// boundary (immediately after that epoch's checkpoint reached the store).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochStatus {
    /// Epochs completed so far (= checkpoints taken), including this one.
    pub epochs: u64,
    /// Engine ticks executed so far.
    pub ticks: u64,
}

/// What the epoch control callback tells the supervisor to do next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpochControl {
    /// Keep stepping the current engine.
    Continue,
    /// Tear the current engine and policy down and rebuild them from the
    /// checkpoint just written — a live migration onto a fresh engine via
    /// the `snapshot()/restore()` path. Not counted as a crash; recovery
    /// determinism makes the migrated run byte-identical to an
    /// unmigrated one.
    Migrate,
}

/// The outcome of a supervised run that eventually completed.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryReport {
    /// The run's measurements — byte-identical to an unsupervised run of
    /// the same workload/policy/faults, crashes or not.
    pub result: RunResult,
    /// Crashes survived (injected or genuine, including watchdog expiries).
    pub crashes: u32,
    /// Crashes recovered by restoring a snapshot (the rest restarted from
    /// scratch because no checkpoint existed yet).
    pub resumes: u32,
    /// Completed epochs (= checkpoints taken).
    pub epochs: u64,
    /// Total engine ticks of the finished run.
    pub ticks: u64,
    /// Total checkpoint bytes written (full-snapshot bases plus WAL delta
    /// records) — the deterministic cost the bench suite regression-pins.
    pub checkpoint_bytes: u64,
    /// WAL delta records appended across the run.
    pub wal_records: u64,
    /// Recovery scans that had to truncate: a torn or corrupt delta log
    /// (resumed from the last intact record) or an unusable base snapshot
    /// (restarted from scratch).
    pub wal_truncations: u32,
    /// Live migrations performed: epoch boundaries at which the control
    /// callback returned [`EpochControl::Migrate`] and the run moved onto
    /// a freshly built engine restored from the checkpoint just written.
    pub migrations: u64,
}

impl RecoveryReport {
    /// One-line human summary.
    pub fn summary_line(&self) -> String {
        format!(
            "{} | {} ticks, {} epochs, {} crashes ({} resumed), \
             {} migrations, {} ckpt bytes ({} wal records, {} truncations)",
            self.result.summary_line(),
            self.ticks,
            self.epochs,
            self.crashes,
            self.resumes,
            self.migrations,
            self.checkpoint_bytes,
            self.wal_records,
            self.wal_truncations
        )
    }
}

/// How one isolated stretch of stepping ended.
enum Stretch {
    Done,
    EpochBoundary,
    Watchdog,
}

/// Forwards each event exactly once across crash boundaries: after a
/// resume, the engine replays (and re-emits) the events between the last
/// checkpoint and the crash, which were already forwarded before the crash.
/// Gating on the absolute emission sequence number — monotone across the
/// whole supervised run because [`Engine::restore`] restores the counter —
/// suppresses exactly those duplicates.
struct GatedSink<'s, S: TraceSink> {
    inner: &'s mut S,
    /// Absolute sequence number of the next event this sink will receive.
    seq: u64,
    /// Events forwarded so far (= the sequence number high-water mark).
    forwarded: u64,
}

impl<'s, S: TraceSink> GatedSink<'s, S> {
    fn new(inner: &'s mut S) -> Self {
        GatedSink {
            inner,
            seq: 0,
            forwarded: 0,
        }
    }

    /// Re-anchor after a restore: the next event emitted carries this
    /// absolute sequence number.
    fn resync(&mut self, seq: u64) {
        self.seq = seq;
    }
}

impl<S: TraceSink> TraceSink for GatedSink<'_, S> {
    fn emit(&mut self, event: &TraceEvent) {
        if self.seq >= self.forwarded {
            self.inner.emit(event);
            self.forwarded += 1;
        }
        self.seq += 1;
    }
}

/// Restores the previous panic hook on drop (see
/// [`SupervisorOpts::silence_panics`]).
struct HookGuard {
    active: bool,
}

impl HookGuard {
    fn install(silence: bool) -> Self {
        if silence {
            std::panic::set_hook(Box::new(|_| {}));
        }
        HookGuard { active: silence }
    }
}

impl Drop for HookGuard {
    fn drop(&mut self) {
        if self.active {
            let _ = std::panic::take_hook();
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The crash-recovery loop. See the [module docs](crate::supervisor) for
/// the state machine.
#[derive(Clone, Debug, Default)]
pub struct Supervisor {
    opts: SupervisorOpts,
}

impl Supervisor {
    /// A supervisor with the given knobs.
    pub fn new(opts: SupervisorOpts) -> Self {
        Supervisor { opts }
    }

    /// Runs the workload to completion under crash recovery.
    ///
    /// `policy_factory` must build a **deterministically identical** fresh
    /// policy on every call (same seed, same configuration): a crashed
    /// attempt's policy is discarded wholesale and a fresh one is rebuilt,
    /// then overwritten from the checkpoint via
    /// [`BoxAllocator::restore`]. `crash_plan` injects deterministic
    /// panics at the named engine ticks (each fires once).
    ///
    /// # Errors
    /// [`SupervisorError::Engine`] immediately on a typed engine error
    /// (those are deterministic, retrying cannot help);
    /// [`SupervisorError::Snapshot`] when checkpoint/restore fails (e.g. a
    /// policy without checkpoint support); otherwise
    /// [`SupervisorError::RetriesExhausted`] once `max_retries` crashes
    /// have been burned.
    #[allow(clippy::too_many_arguments)]
    pub fn run<C: Cache + Checkpoint>(
        &self,
        seqs: &[Vec<PageId>],
        params: &ModelParams,
        opts: &EngineOpts,
        faults: &FaultPlan,
        crash_plan: &CrashPlan,
        policy_factory: impl FnMut() -> Box<dyn BoxAllocator>,
        cache_factory: impl FnMut(usize) -> C,
        sink: &mut impl TraceSink,
    ) -> Result<RecoveryReport, SupervisorError> {
        let mut store = MemStore::new();
        self.run_with_store(
            seqs,
            params,
            opts,
            faults,
            crash_plan,
            policy_factory,
            cache_factory,
            sink,
            &mut store,
        )
    }

    /// Like [`Supervisor::run`], but checkpointing into a caller-supplied
    /// [`CheckpointStore`] — the seam the chaos harness uses to corrupt
    /// what recovery reads (torn tails, flipped bytes, stale bases), and
    /// the hook a persistent server would use to keep checkpoints on disk.
    /// A store holding a checkpoint from a previous run of the *same*
    /// workload resumes it instead of starting over.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with_store<C: Cache + Checkpoint>(
        &self,
        seqs: &[Vec<PageId>],
        params: &ModelParams,
        opts: &EngineOpts,
        faults: &FaultPlan,
        crash_plan: &CrashPlan,
        policy_factory: impl FnMut() -> Box<dyn BoxAllocator>,
        cache_factory: impl FnMut(usize) -> C,
        sink: &mut impl TraceSink,
        store: &mut dyn CheckpointStore,
    ) -> Result<RecoveryReport, SupervisorError> {
        self.run_controlled(
            seqs,
            params,
            opts,
            faults,
            crash_plan,
            policy_factory,
            cache_factory,
            sink,
            store,
            |_| EpochControl::Continue,
        )
    }

    /// Like [`Supervisor::run_with_store`], with an epoch control callback:
    /// at every epoch boundary, immediately *after* that epoch's checkpoint
    /// reached the store, `control` inspects the run's [`EpochStatus`] and
    /// may order [`EpochControl::Migrate`] — the supervisor then discards
    /// the live engine and policy wholesale and rebuilds both from the
    /// checkpoint just written, exactly the `snapshot()/restore()` recovery
    /// path, without burning a retry. This is the live-migration seam the
    /// `parapage serve` tenant sessions use to move a tenant onto a fresh
    /// engine mid-run; recovery determinism keeps the migrated run's result
    /// and trace byte-identical to an unmigrated one.
    #[allow(clippy::too_many_arguments)]
    pub fn run_controlled<C: Cache + Checkpoint>(
        &self,
        seqs: &[Vec<PageId>],
        params: &ModelParams,
        opts: &EngineOpts,
        faults: &FaultPlan,
        crash_plan: &CrashPlan,
        mut policy_factory: impl FnMut() -> Box<dyn BoxAllocator>,
        mut cache_factory: impl FnMut(usize) -> C,
        sink: &mut impl TraceSink,
        store: &mut dyn CheckpointStore,
        mut control: impl FnMut(EpochStatus) -> EpochControl,
    ) -> Result<RecoveryReport, SupervisorError> {
        let _hook = HookGuard::install(self.opts.silence_panics);
        let mut gate = GatedSink::new(sink);
        let mut fired = vec![false; crash_plan.ticks().len()];
        let mut crashes = 0u32;
        let mut resumes = 0u32;
        let mut epochs = 0u64;
        let mut checkpoint_bytes = 0u64;
        let mut wal_records = 0u64;
        let mut wal_truncations = 0u32;
        let mut migrations = 0u64;
        // Whether the next attempt follows a crash (and a successful
        // restore should count as a resume) rather than a migration or the
        // initial entry.
        let mut resuming_from_crash = false;

        'attempt: loop {
            let mut alloc = policy_factory();
            let mut engine =
                Engine::new(&mut *alloc, seqs, params, opts, faults, &mut cache_factory);
            // Recover from the store: decode the base snapshot, replay the
            // delta log, truncate at the first tear. An unusable base means
            // restart from scratch — deterministic replay plus the gated
            // sink keep even that byte-identical, just slower.
            let mut restored = false;
            if let Some((base, log)) = store.view() {
                match recover(base, log) {
                    Ok(rec) => {
                        if rec.truncation.is_some() {
                            wal_truncations += 1;
                        }
                        engine.restore(&rec.snapshot, &mut *alloc)?;
                        restored = true;
                    }
                    Err(_) => {
                        wal_truncations += 1;
                    }
                }
            }
            if restored && resuming_from_crash {
                resumes += 1;
            }
            resuming_from_crash = false;
            // Always re-base after an attempt starts: the first epoch
            // boundary below installs a fresh full snapshot, so records are
            // never appended after a (possibly torn) old log tail.
            let mut cursor: Option<WalCursor> = None;
            let mut epochs_since_base = 0u64;
            gate.resync(engine.emitted());
            let attempt_start = Instant::now();

            loop {
                // One epoch of stepping, isolated from panics. Everything
                // mutably borrowed here is rebuilt (engine, policy) or
                // explicitly resynchronized (gate, via the monotone
                // emission counter) after a crash, so the unwind-safety
                // assertion is sound.
                let stretch = catch_unwind(AssertUnwindSafe(|| -> Result<Stretch, EngineError> {
                    // An epoch is `epoch_ticks` *events* on the engine's
                    // logical clock, not `epoch_ticks` step() calls: one
                    // step may process a whole timestamp batch, so the
                    // boundary can overshoot by at most one batch.
                    let epoch_end = engine.ticks() + self.opts.epoch_ticks;
                    let mut step = 0usize;
                    while engine.ticks() < epoch_end {
                        if !engine.step(&mut *alloc, &mut gate)? {
                            return Ok(Stretch::Done);
                        }
                        let tick = engine.ticks();
                        // Crossing test, not equality: one engine step may
                        // process a whole timestamp batch of events, so the
                        // logical clock can jump past a planned tick.
                        if let Some((i, _)) = crash_plan
                            .ticks()
                            .iter()
                            .enumerate()
                            .find(|&(i, &t)| t <= tick && !fired[i])
                        {
                            fired[i] = true;
                            panic!("injected crash at tick {tick}");
                        }
                        step += 1;
                        if step % 64 == 63 && attempt_start.elapsed() >= self.opts.watchdog {
                            return Ok(Stretch::Watchdog);
                        }
                    }
                    Ok(Stretch::EpochBoundary)
                }));

                let crash_note = match stretch {
                    Ok(Ok(Stretch::Done)) => {
                        let ticks = engine.ticks();
                        let result = engine.into_result(&*alloc);
                        return Ok(RecoveryReport {
                            result,
                            crashes,
                            resumes,
                            epochs,
                            ticks,
                            checkpoint_bytes,
                            wal_records,
                            wal_truncations,
                            migrations,
                        });
                    }
                    Ok(Ok(Stretch::EpochBoundary)) => {
                        epochs += 1;
                        let incremental = self.opts.wal
                            && cursor.is_some()
                            && epochs_since_base < self.opts.full_snapshot_every;
                        if incremental {
                            let delta = engine.wal_delta(&*alloc)?;
                            let record = cursor
                                .as_mut()
                                .expect("incremental implies a base is installed")
                                .frame(&delta.encode());
                            checkpoint_bytes += record.len() as u64;
                            store.append_record(record);
                            wal_records += 1;
                            epochs_since_base += 1;
                        } else {
                            let bytes = engine.snapshot(&*alloc)?.encode();
                            checkpoint_bytes += bytes.len() as u64;
                            cursor = Some(WalCursor::at_base(&bytes));
                            store.install_base(bytes);
                            engine.reset_wal_mark();
                            epochs_since_base = 0;
                        }
                        // The checkpoint for this epoch is durable; let the
                        // controller migrate onto a fresh engine restored
                        // from it. Not a crash: no retry burned, no resume
                        // counted, no backoff slept.
                        if control(EpochStatus {
                            epochs,
                            ticks: engine.ticks(),
                        }) == EpochControl::Migrate
                        {
                            migrations += 1;
                            continue 'attempt;
                        }
                        continue;
                    }
                    Ok(Ok(Stretch::Watchdog)) => format!(
                        "watchdog expired after {:?} at tick {}",
                        self.opts.watchdog,
                        engine.ticks()
                    ),
                    Ok(Err(e)) => return Err(SupervisorError::Engine(e)),
                    Err(payload) => panic_message(payload.as_ref()),
                };

                // Crash path: burn a retry, back off, rebuild.
                crashes += 1;
                if crashes > self.opts.max_retries {
                    return Err(SupervisorError::RetriesExhausted {
                        crashes,
                        last_crash: crash_note,
                    });
                }
                let backoff =
                    capped_backoff(self.opts.backoff_base, self.opts.backoff_cap, crashes - 1);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                resuming_from_crash = true;
                continue 'attempt;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_engine_with_faults_traced;
    use crate::trace::TraceRecorder;
    use parapage_cache::{LruCache, ProcId};
    use parapage_core::{DetPar, FaultEvent, RandPar};

    fn params() -> ModelParams {
        ModelParams::new(4, 32, 8)
    }

    fn seqs() -> Vec<Vec<PageId>> {
        // Per-processor cyclic walks with different strides: misses keep
        // occurring at every height, so grants stay non-trivial throughout.
        (0..4usize)
            .map(|x| {
                (0..400usize)
                    .map(|i| PageId::namespaced(ProcId(x as u32), (i as u64 * (x as u64 + 1)) % 48))
                    .collect()
            })
            .collect()
    }

    fn tiny_opts() -> SupervisorOpts {
        SupervisorOpts {
            epoch_ticks: 16,
            backoff_base: Duration::ZERO,
            ..SupervisorOpts::default()
        }
    }

    fn uninterrupted(seqs: &[Vec<PageId>], faults: &FaultPlan) -> (RunResult, Vec<TraceEvent>) {
        let mut alloc = DetPar::new(&params());
        let mut rec = TraceRecorder::new();
        let result = run_engine_with_faults_traced(
            &mut alloc,
            seqs,
            &params(),
            &EngineOpts::default(),
            faults,
            |_| LruCache::new(0),
            &mut rec,
        )
        .expect("clean run");
        (result, rec.into_events())
    }

    #[test]
    fn crash_free_supervised_run_matches_plain_run() {
        let seqs = seqs();
        let (want, want_trace) = uninterrupted(&seqs, &FaultPlan::none());
        let mut rec = TraceRecorder::new();
        let report = Supervisor::new(tiny_opts())
            .run(
                &seqs,
                &params(),
                &EngineOpts::default(),
                &FaultPlan::none(),
                &CrashPlan::none(),
                || Box::new(DetPar::new(&params())),
                |_| LruCache::new(0),
                &mut rec,
            )
            .expect("supervised run");
        assert_eq!(report.crashes, 0);
        assert_eq!(report.result, want);
        assert_eq!(rec.into_events(), want_trace);
    }

    #[test]
    fn recovery_is_byte_identical_across_injected_crashes() {
        let seqs = seqs();
        let faults = FaultPlan::new(vec![
            FaultEvent::ProcStall {
                proc: parapage_cache::ProcId(1),
                from: 40,
                until: 200,
            },
            FaultEvent::LatencySpike {
                from: 300,
                until: 700,
                factor: 3,
            },
        ]);
        let (want, want_trace) = uninterrupted(&seqs, &faults);
        // Learn the run's length from a crash-free supervised probe, then
        // crash at early/middle/late ticks of it.
        let probe = Supervisor::new(tiny_opts())
            .run(
                &seqs,
                &params(),
                &EngineOpts::default(),
                &faults,
                &CrashPlan::none(),
                || Box::new(DetPar::new(&params())),
                |_| LruCache::new(0),
                &mut crate::trace::NullSink,
            )
            .expect("probe run");
        let total = probe.ticks;
        assert!(total >= 12, "premise: run long enough to crash into");
        let crash_ticks = vec![2, total / 2, total / 2 + 1, total - 2];
        let n_crashes = {
            let mut t = crash_ticks.clone();
            t.sort_unstable();
            t.dedup();
            t.len() as u32
        };
        let opts = SupervisorOpts {
            epoch_ticks: 4,
            ..tiny_opts()
        };
        let mut rec = TraceRecorder::new();
        let report = Supervisor::new(opts)
            .run(
                &seqs,
                &params(),
                &EngineOpts::default(),
                &faults,
                &CrashPlan::at_ticks(crash_ticks),
                || Box::new(DetPar::new(&params())),
                |_| LruCache::new(0),
                &mut rec,
            )
            .expect("recovered run");
        assert_eq!(report.crashes, n_crashes);
        assert!(report.resumes >= n_crashes - 1, "late crashes resume");
        assert_eq!(report.result, want, "recovered result must be identical");
        assert_eq!(rec.into_events(), want_trace, "trace must dedup exactly");
    }

    #[test]
    fn randomized_policy_recovers_identically() {
        let seqs = seqs();
        let mk = || RandPar::new(&params(), 0xfeed);
        let mut alloc = mk();
        let mut rec = TraceRecorder::new();
        let want = run_engine_with_faults_traced(
            &mut alloc,
            &seqs,
            &params(),
            &EngineOpts::default(),
            &FaultPlan::none(),
            |_| LruCache::new(0),
            &mut rec,
        )
        .expect("clean run");
        let want_trace = rec.into_events();

        let mut rec = TraceRecorder::new();
        let report = Supervisor::new(tiny_opts())
            .run(
                &seqs,
                &params(),
                &EngineOpts::default(),
                &FaultPlan::none(),
                &CrashPlan::at_ticks(vec![30, 75]),
                move || Box::new(mk()),
                |_| LruCache::new(0),
                &mut rec,
            )
            .expect("recovered run");
        assert_eq!(report.crashes, 2);
        assert_eq!(report.result, want, "RNG state must survive recovery");
        assert_eq!(rec.into_events(), want_trace);
    }

    #[test]
    fn double_crash_in_one_run_dedups_the_trace_exactly() {
        // Satellite: two distinct crash ticks in one run, chosen to land in
        // the *same* epoch window (20 and 24 with 16-tick epochs), so the
        // second crash interrupts the replay of the first crash's gap. The
        // gated sink must still forward every event exactly once.
        let seqs = seqs();
        let (want, want_trace) = uninterrupted(&seqs, &FaultPlan::none());
        let mut rec = TraceRecorder::new();
        let report = Supervisor::new(tiny_opts())
            .run(
                &seqs,
                &params(),
                &EngineOpts::default(),
                &FaultPlan::none(),
                &CrashPlan::at_ticks(vec![20, 24]),
                || Box::new(DetPar::new(&params())),
                |_| LruCache::new(0),
                &mut rec,
            )
            .expect("doubly-crashed run");
        assert_eq!(report.crashes, 2);
        assert_eq!(report.resumes, 2, "both crashes resume from checkpoints");
        assert_eq!(report.result, want);
        assert_eq!(
            rec.into_events(),
            want_trace,
            "dedup across two crash boundaries must be exact"
        );
    }

    #[test]
    fn migration_at_every_epoch_is_byte_identical() {
        // Satellite for the serve layer: a controller that orders a
        // migration at every epoch boundary forces the run through the
        // snapshot()/restore() path dozens of times. Result and trace must
        // match the uninterrupted run exactly, no crash or resume counted.
        let seqs = seqs();
        let (want, want_trace) = uninterrupted(&seqs, &FaultPlan::none());
        let mut rec = TraceRecorder::new();
        let mut store = MemStore::new();
        // Runs are only a few dozen ticks long (a tick is one event, and a
        // grant window serves many requests), so cut epochs every 4 ticks
        // to force several migration points.
        let opts = SupervisorOpts {
            epoch_ticks: 4,
            ..tiny_opts()
        };
        let report = Supervisor::new(opts)
            .run_controlled(
                &seqs,
                &params(),
                &EngineOpts::default(),
                &FaultPlan::none(),
                &CrashPlan::none(),
                || Box::new(DetPar::new(&params())),
                |_| LruCache::new(0),
                &mut rec,
                &mut store,
                |_| EpochControl::Migrate,
            )
            .expect("migrated run");
        assert!(report.migrations > 2, "premise: several epoch boundaries");
        assert_eq!(report.crashes, 0);
        assert_eq!(report.resumes, 0);
        assert_eq!(report.result, want, "migrated result must be identical");
        assert_eq!(rec.into_events(), want_trace, "no duplicate events");
    }

    #[test]
    fn migration_composes_with_injected_crashes() {
        // Migrations and crashes in the same run: the controller migrates
        // at the second epoch boundary while the crash plan panics nearby.
        // Both paths rebuild through recovery, so the run stays exact.
        let seqs = seqs();
        let (want, want_trace) = uninterrupted(&seqs, &FaultPlan::none());
        let mut rec = TraceRecorder::new();
        let mut store = MemStore::new();
        let mut boundaries = 0u64;
        let opts = SupervisorOpts {
            epoch_ticks: 4,
            ..tiny_opts()
        };
        let report = Supervisor::new(opts)
            .run_controlled(
                &seqs,
                &params(),
                &EngineOpts::default(),
                &FaultPlan::none(),
                &CrashPlan::at_ticks(vec![10, 21]),
                || Box::new(DetPar::new(&params())),
                |_| LruCache::new(0),
                &mut rec,
                &mut store,
                |_| {
                    boundaries += 1;
                    if boundaries == 2 {
                        EpochControl::Migrate
                    } else {
                        EpochControl::Continue
                    }
                },
            )
            .expect("migrated+crashed run");
        assert_eq!(report.migrations, 1);
        assert_eq!(report.crashes, 2);
        assert_eq!(report.result, want);
        assert_eq!(rec.into_events(), want_trace);
    }

    #[test]
    fn wal_checkpoints_cost_less_than_full_snapshots() {
        // Same workload, same epoch cadence, crash-free: incremental delta
        // records must be much cheaper than a full snapshot per epoch, and
        // the result must be identical either way. Deterministic byte
        // counts, so the margin is pinned without timing flakiness. A run
        // long enough for the grow-only audit trace to dominate a full
        // snapshot — the regime the WAL exists for.
        let seqs: Vec<Vec<PageId>> = (0..4usize)
            .map(|x| {
                (0..4000usize)
                    .map(|i| PageId::namespaced(ProcId(x as u32), (i as u64 * (x as u64 + 1)) % 48))
                    .collect()
            })
            .collect();
        let run = |wal: bool| {
            Supervisor::new(SupervisorOpts { wal, ..tiny_opts() })
                .run(
                    &seqs,
                    &params(),
                    &EngineOpts::default(),
                    &FaultPlan::none(),
                    &CrashPlan::none(),
                    || Box::new(DetPar::new(&params())),
                    |_| LruCache::new(0),
                    &mut crate::trace::NullSink,
                )
                .expect("supervised run")
        };
        let full = run(false);
        let wal = run(true);
        assert_eq!(full.result, wal.result);
        assert_eq!(full.epochs, wal.epochs);
        assert_eq!(full.wal_records, 0);
        assert!(wal.wal_records > 0, "incremental epochs must use records");
        assert!(
            wal.checkpoint_bytes * 2 < full.checkpoint_bytes,
            "wal {} bytes vs full {} bytes",
            wal.checkpoint_bytes,
            full.checkpoint_bytes
        );
    }

    #[test]
    fn prepopulated_store_resumes_a_previous_run() {
        // A store carried over from a crashed process resumes the run
        // instead of starting over: crash mid-run with one store, then
        // hand the same store to a brand-new supervisor call.
        let seqs = seqs();
        let (want, want_trace) = uninterrupted(&seqs, &FaultPlan::none());
        let mut store = MemStore::new();
        let opts = SupervisorOpts {
            max_retries: 0,
            ..tiny_opts()
        };
        let err = Supervisor::new(opts)
            .run_with_store(
                &seqs,
                &params(),
                &EngineOpts::default(),
                &FaultPlan::none(),
                &CrashPlan::at_ticks(vec![20]),
                || Box::new(DetPar::new(&params())),
                |_| LruCache::new(0),
                &mut crate::trace::NullSink,
                &mut store,
            )
            .expect_err("zero retries: the injected crash is fatal");
        assert!(matches!(err, SupervisorError::RetriesExhausted { .. }));
        let mut rec = TraceRecorder::new();
        let report = Supervisor::new(tiny_opts())
            .run_with_store(
                &seqs,
                &params(),
                &EngineOpts::default(),
                &FaultPlan::none(),
                &CrashPlan::none(),
                || Box::new(DetPar::new(&params())),
                |_| LruCache::new(0),
                &mut rec,
                &mut store,
            )
            .expect("second process finishes the run");
        assert_eq!(report.crashes, 0);
        assert_eq!(report.result, want);
        // The second process replays from the stored checkpoint, so its
        // stream is exactly a suffix of the uninterrupted trace.
        let evs = rec.into_events();
        assert!(!evs.is_empty() && evs.len() < want_trace.len());
        assert_eq!(evs[..], want_trace[want_trace.len() - evs.len()..]);
    }

    #[test]
    fn retries_exhausted_is_typed() {
        let seqs = seqs();
        let opts = SupervisorOpts {
            max_retries: 2,
            ..tiny_opts()
        };
        // More injected crashes than the budget tolerates.
        let err = Supervisor::new(opts)
            .run(
                &seqs,
                &params(),
                &EngineOpts::default(),
                &FaultPlan::none(),
                &CrashPlan::at_ticks(vec![1, 2, 3, 4]),
                || Box::new(DetPar::new(&params())),
                |_| LruCache::new(0),
                &mut crate::trace::NullSink,
            )
            .expect_err("budget must run out");
        match err {
            SupervisorError::RetriesExhausted { crashes, .. } => assert_eq!(crashes, 3),
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn corrupted_snapshot_is_rejected_not_panicked() {
        // Decode-side corruption is covered in `snapshot`; here: the
        // supervisor surfaces it as a typed error end-to-end by feeding a
        // policy that cannot checkpoint (Unsupported) — the first epoch
        // boundary must fail with SupervisorError::Snapshot.
        struct NoCkpt(DetPar);
        impl BoxAllocator for NoCkpt {
            fn name(&self) -> &'static str {
                "no-ckpt"
            }
            fn grant(
                &mut self,
                proc: parapage_cache::ProcId,
                now: parapage_cache::Time,
            ) -> parapage_core::Grant {
                self.0.grant(proc, now)
            }
            fn on_proc_finished(
                &mut self,
                proc: parapage_cache::ProcId,
                now: parapage_cache::Time,
            ) {
                self.0.on_proc_finished(proc, now);
            }
        }
        let seqs = seqs();
        let err = Supervisor::new(tiny_opts())
            .run(
                &seqs,
                &params(),
                &EngineOpts::default(),
                &FaultPlan::none(),
                &CrashPlan::none(),
                || Box::new(NoCkpt(DetPar::new(&params()))),
                |_| LruCache::new(0),
                &mut crate::trace::NullSink,
            )
            .expect_err("checkpoint-less policy cannot be supervised");
        assert!(matches!(err, SupervisorError::Snapshot(_)), "got {err:?}");
    }
}
