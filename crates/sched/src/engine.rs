//! The box-driven execution engine: the paper's parallel paging model as an
//! event simulator.
//!
//! The engine owns one LRU cache and one sequence cursor per processor and
//! asks the policy ([`BoxAllocator`]) for a new grant exactly when a
//! processor's previous grant expires. Inside a grant of height `h` the
//! processor serves requests through an `h`-page LRU cache (hit = 1 step,
//! miss = `s`); a grant of height 0 is a stall. Grant requests are delivered
//! in global time order (a binary heap of expiry events), so policies can
//! maintain phase/chunk state keyed on the current time.
//!
//! ### Cache semantics across grants
//!
//! By default the engine uses *resize* semantics: when the new grant's
//! height is at least the old one, cache contents are kept; when it is
//! smaller, the LRU tail is truncated. The paper's WLOG
//! *compartmentalized* semantics (every box starts cold) are available via
//! [`EngineOpts::compartmentalized`] — they only make algorithms slower, so
//! measured makespans under resize semantics remain valid upper bounds for
//! the algorithms' behaviour while being closer to a real implementation.
//!
//! ### Completion-notification timing
//!
//! Although the engine simulates a whole grant at once, a processor that
//! finishes mid-grant does **not** notify the policy immediately: the
//! completion is queued as an event at its true simulated time and delivered
//! before any grant request at that time. Policies therefore observe
//! completions in exact time order, so phase transitions (DET-PAR, RAND-PAR)
//! fire at the moment the paper's model says they do.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use parapage_cache::{run_window, Cache, CacheStats, LruCache, PageId, ProcId, Time};
use parapage_core::{BoxAllocator, Interval, ModelParams};

use crate::metrics::RunResult;

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineOpts {
    /// Record per-processor allocation timelines (needed by the
    /// well-roundedness audit; costs memory proportional to grant count).
    pub record_timelines: bool,
    /// Start every grant with a cold cache (the paper's compartmentalized
    /// WLOG). Default `false`: resize semantics.
    pub compartmentalized: bool,
    /// Hard wall-clock cap; the engine panics past it (a policy that stalls
    /// everyone forever would otherwise hang).
    pub max_time: Time,
    /// When set, the engine *enforces* this bound on concurrently allocated
    /// height at grant time (panicking on violation), instead of only
    /// reporting the peak post-hoc. Use it to pin a policy's resource
    /// augmentation `ξ·k` in tests.
    pub memory_limit: Option<usize>,
}

impl Default for EngineOpts {
    fn default() -> Self {
        EngineOpts {
            record_timelines: false,
            compartmentalized: false,
            max_time: u64::MAX / 4,
            memory_limit: None,
        }
    }
}

/// Runs `alloc` against the request sequences and measures the outcome.
///
/// `seqs[x]` is processor `x`'s request sequence; `seqs.len()` must equal
/// `params.p`.
///
/// # Panics
/// If the policy emits a zero-duration grant, or simulated time exceeds
/// `opts.max_time`.
pub fn run_engine(
    alloc: &mut dyn BoxAllocator,
    seqs: &[Vec<PageId>],
    params: &ModelParams,
    opts: &EngineOpts,
) -> RunResult {
    run_engine_with(alloc, seqs, params, opts, |_| LruCache::new(0))
}

/// Like [`run_engine`], but with a caller-chosen replacement policy inside
/// the boxes: `cache_factory(x)` builds processor `x`'s (initially empty,
/// zero-capacity) cache. The paper fixes LRU WLOG; this entry point lets
/// experiment E13 quantify how much that choice matters in practice.
pub fn run_engine_with<C: Cache>(
    alloc: &mut dyn BoxAllocator,
    seqs: &[Vec<PageId>],
    params: &ModelParams,
    opts: &EngineOpts,
    cache_factory: impl FnMut(usize) -> C,
) -> RunResult {
    let mut factory = cache_factory;
    assert_eq!(seqs.len(), params.p, "one sequence per processor");
    let p = params.p;
    let s = params.s;

    let mut pos = vec![0usize; p];
    let mut caches: Vec<C> = (0..p).map(&mut factory).collect();
    let mut completions = vec![0u64; p];
    let mut finished = vec![false; p];
    let mut stats = CacheStats::default();
    let mut memory_integral = 0u128;
    let mut grants_issued = 0u64;
    let mut timelines: Vec<Vec<Interval>> = vec![Vec::new(); p];
    // Height deltas for the peak-memory audit: (time, delta); at equal
    // times, releases (< 0) sort before acquisitions.
    let mut deltas: Vec<(Time, i64)> = Vec::new();
    // Online usage tracking for `memory_limit` enforcement.
    let mut live_usage = 0usize;
    let mut releases: BinaryHeap<Reverse<(Time, usize)>> = BinaryHeap::new();

    // Events: (time, kind, proc). Completion notifications (kind 0) sort
    // before grant requests (kind 1) at equal timestamps, so a policy sees
    // every completion at its true simulated time before it answers any
    // grant request at that time.
    const EV_COMPLETION: u8 = 0;
    const EV_GRANT: u8 = 1;
    let mut heap: BinaryHeap<Reverse<(Time, u8, u32)>> = BinaryHeap::new();
    let mut remaining = 0usize;
    for x in 0..p {
        if seqs[x].is_empty() {
            finished[x] = true;
            alloc.on_proc_finished(ProcId(x as u32), 0);
        } else {
            remaining += 1;
            heap.push(Reverse((0, EV_GRANT, x as u32)));
        }
    }

    while let Some(Reverse((now, kind, xi))) = heap.pop() {
        let x = xi as usize;
        if kind == EV_COMPLETION {
            remaining -= 1;
            alloc.on_proc_finished(ProcId(xi), now);
            continue;
        }
        assert!(
            now <= opts.max_time,
            "engine exceeded max_time={} (policy `{}` stalled?)",
            opts.max_time,
            alloc.name()
        );
        let grant = alloc.grant(ProcId(xi), now);
        assert!(grant.duration >= 1, "zero-duration grant from {}", alloc.name());
        grants_issued += 1;
        let end = now + grant.duration;

        let cache = &mut caches[x];
        if opts.compartmentalized {
            cache.clear();
        }
        cache.resize(grant.height);

        let out = if grant.height == 0 {
            // Stall: no progress; the cache (already truncated to zero)
            // holds nothing.
            parapage_cache::WindowOutcome {
                end_index: pos[x],
                stats: CacheStats::default(),
                time_used: 0,
                finished: pos[x] >= seqs[x].len(),
            }
        } else {
            run_window(&seqs[x], pos[x], cache, grant.duration, s)
        };
        let served_from = pos[x];
        pos[x] = out.end_index;
        stats += out.stats;
        memory_integral += grant.height as u128 * grant.duration as u128;
        if grant.height > 0 {
            // Peak accounting releases the allocation at completion if the
            // processor finishes mid-grant (a real allocator reclaims on
            // completion); the memory *integral* above still charges the
            // committed grant in full, matching the paper's impact
            // accounting.
            let release_at = if out.finished {
                (now + out.time_used).max(now + 1)
            } else {
                end
            };
            deltas.push((now, grant.height as i64));
            deltas.push((release_at, -(grant.height as i64)));
            if let Some(limit) = opts.memory_limit {
                while let Some(&Reverse((t, h))) = releases.peek() {
                    if t <= now {
                        releases.pop();
                        live_usage -= h;
                    } else {
                        break;
                    }
                }
                live_usage += grant.height;
                assert!(
                    live_usage <= limit,
                    "policy `{}` exceeded memory limit {limit} \
                     (usage {live_usage} at t={now})",
                    alloc.name()
                );
                releases.push(Reverse((release_at, grant.height)));
            }
        }
        if opts.record_timelines {
            timelines[x].push(Interval {
                start: now,
                end,
                height: grant.height,
            });
        }
        alloc.observe(ProcId(xi), &out);
        if out.end_index > served_from {
            alloc.observe_accesses(ProcId(xi), &seqs[x][served_from..out.end_index]);
        }

        if out.finished && !finished[x] {
            finished[x] = true;
            completions[x] = now + out.time_used;
            heap.push(Reverse((completions[x], EV_COMPLETION, xi)));
        } else if !out.finished {
            heap.push(Reverse((end, EV_GRANT, xi)));
        }
    }
    debug_assert_eq!(remaining, 0);

    // Peak concurrent memory from the delta trace.
    deltas.sort_unstable_by_key(|&(t, d)| (t, d));
    let mut cur = 0i64;
    let mut peak = 0i64;
    for &(_, d) in &deltas {
        cur += d;
        peak = peak.max(cur);
    }

    let makespan = completions.iter().copied().max().unwrap_or(0);
    RunResult {
        completions,
        makespan,
        stats,
        memory_integral,
        peak_memory: peak as usize,
        grants_issued,
        timelines: if opts.record_timelines {
            Some(timelines)
        } else {
            None
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapage_core::{DetPar, Grant, RandPar, StaticPartition};

    fn cyclic_seqs(p: usize, len: usize, width: u64) -> Vec<Vec<PageId>> {
        (0..p)
            .map(|x| {
                (0..len)
                    .map(|i| PageId::namespaced(ProcId(x as u32), i as u64 % width))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn static_partition_serves_everything() {
        let params = ModelParams::new(4, 32, 10);
        let seqs = cyclic_seqs(4, 100, 8);
        let mut alloc = StaticPartition::new(&params);
        let res = run_engine(&mut alloc, &seqs, &params, &EngineOpts::default());
        assert_eq!(res.stats.accesses(), 400);
        assert!(res.makespan > 0);
        assert_eq!(res.completions.len(), 4);
        // Partition of 8 holds the 8-page cycle: 8 misses + 92 hits each.
        assert_eq!(res.stats.misses, 32);
        // Completion = 8 misses * 10 + 92 hits = 172 for every processor.
        assert!(res.completions.iter().all(|&c| c == 172));
        assert!(res.peak_memory <= 32);
    }

    #[test]
    fn symmetric_processors_finish_simultaneously() {
        let params = ModelParams::new(4, 32, 10);
        let seqs = cyclic_seqs(4, 200, 16);
        let mut alloc = DetPar::new(&params);
        let res = run_engine(&mut alloc, &seqs, &params, &EngineOpts::default());
        assert_eq!(res.stats.accesses(), 800);
        assert!(res.makespan >= *res.completions.iter().max().unwrap());
    }

    #[test]
    fn det_par_memory_stays_within_documented_factor() {
        let params = ModelParams::new(8, 64, 10);
        let seqs = cyclic_seqs(8, 500, 24);
        let mut alloc = DetPar::new(&params);
        let res = run_engine(&mut alloc, &seqs, &params, &EngineOpts::default());
        assert!(
            res.peak_memory <= DetPar::MEMORY_FACTOR * params.k,
            "peak {} exceeds {}k",
            res.peak_memory,
            DetPar::MEMORY_FACTOR
        );
    }

    #[test]
    fn rand_par_completes_and_respects_memory() {
        let params = ModelParams::new(8, 64, 10);
        let seqs = cyclic_seqs(8, 400, 12);
        let mut alloc = RandPar::new(&params, 42);
        let res = run_engine(&mut alloc, &seqs, &params, &EngineOpts::default());
        assert_eq!(res.stats.accesses(), 8 * 400);
        // Primary (r*h_min <= k) and secondary (batch*j <= k) never exceed
        // ~2k concurrently even across chunk boundaries.
        assert!(res.peak_memory <= 2 * params.k, "peak {}", res.peak_memory);
    }

    #[test]
    fn empty_sequences_complete_at_time_zero() {
        let params = ModelParams::new(2, 8, 10);
        let seqs = vec![vec![], vec![PageId(1)]];
        let mut alloc = StaticPartition::new(&params);
        let res = run_engine(&mut alloc, &seqs, &params, &EngineOpts::default());
        assert_eq!(res.completions[0], 0);
        assert_eq!(res.completions[1], 10);
        assert_eq!(res.makespan, 10);
    }

    #[test]
    fn timelines_cover_each_processors_run() {
        let params = ModelParams::new(2, 8, 10);
        let seqs = cyclic_seqs(2, 50, 4);
        let mut alloc = StaticPartition::new(&params);
        let opts = EngineOpts {
            record_timelines: true,
            ..Default::default()
        };
        let res = run_engine(&mut alloc, &seqs, &params, &opts);
        let tl = res.timelines.as_ref().unwrap();
        for (x, ivs) in tl.iter().enumerate() {
            assert!(!ivs.is_empty());
            // Contiguous, ordered intervals from 0 past the completion.
            assert_eq!(ivs[0].start, 0);
            for w in ivs.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            assert!(ivs.last().unwrap().end >= res.completions[x]);
        }
    }

    #[test]
    fn compartmentalized_runs_are_never_faster() {
        let params = ModelParams::new(4, 32, 10);
        let seqs = cyclic_seqs(4, 300, 8);
        let mut a1 = StaticPartition::new(&params);
        let plain = run_engine(&mut a1, &seqs, &params, &EngineOpts::default());
        let mut a2 = StaticPartition::new(&params);
        let comp = run_engine(
            &mut a2,
            &seqs,
            &params,
            &EngineOpts {
                compartmentalized: true,
                ..Default::default()
            },
        );
        assert!(comp.makespan >= plain.makespan);
        assert!(comp.stats.misses >= plain.stats.misses);
    }

    #[test]
    #[should_panic(expected = "max_time")]
    fn eternal_stalling_is_detected() {
        struct Staller;
        impl BoxAllocator for Staller {
            fn grant(&mut self, _x: ProcId, _now: Time) -> Grant {
                Grant::stall(1000)
            }
            fn on_proc_finished(&mut self, _x: ProcId, _now: Time) {}
            fn name(&self) -> &'static str {
                "staller"
            }
        }
        let params = ModelParams::new(1, 4, 10);
        let seqs = vec![vec![PageId(1)]];
        let opts = EngineOpts {
            max_time: 10_000,
            ..Default::default()
        };
        run_engine(&mut Staller, &seqs, &params, &opts);
    }

    #[test]
    fn memory_integral_counts_grant_areas() {
        let params = ModelParams::new(1, 4, 10);
        // One processor, one page: StaticPartition grants height 4 for 40.
        let seqs = vec![vec![PageId(1)]];
        let mut alloc = StaticPartition::new(&params);
        let res = run_engine(&mut alloc, &seqs, &params, &EngineOpts::default());
        assert_eq!(res.memory_integral, 4 * 40);
        assert_eq!(res.grants_issued, 1);
    }
}

#[cfg(test)]
mod generic_engine_tests {
    use super::*;
    use parapage_cache::{ArcCache, FifoCache};
    use parapage_core::StaticPartition;

    fn seqs(p: usize, len: usize, width: u64) -> Vec<Vec<PageId>> {
        (0..p)
            .map(|x| {
                (0..len)
                    .map(|i| PageId::namespaced(ProcId(x as u32), i as u64 % width))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn alternative_replacement_policies_serve_everything() {
        let params = ModelParams::new(4, 32, 10);
        let w = seqs(4, 200, 12);
        let mut a1 = StaticPartition::new(&params);
        let fifo = run_engine_with(&mut a1, &w, &params, &EngineOpts::default(), |_| {
            FifoCache::new(0)
        });
        let mut a2 = StaticPartition::new(&params);
        let arc = run_engine_with(&mut a2, &w, &params, &EngineOpts::default(), |_| {
            ArcCache::new(0)
        });
        assert_eq!(fifo.stats.accesses(), 800);
        assert_eq!(arc.stats.accesses(), 800);
        // Same partition sizes: both must land between all-hit and all-miss.
        for r in [&fifo, &arc] {
            assert!(r.makespan >= 200 && r.makespan <= 2000);
        }
    }

    #[test]
    fn memory_limit_accepts_compliant_policies() {
        let params = ModelParams::new(4, 32, 10);
        let w = seqs(4, 300, 8);
        let mut st = StaticPartition::new(&params);
        let opts = EngineOpts {
            memory_limit: Some(params.k),
            ..Default::default()
        };
        let res = run_engine(&mut st, &w, &params, &opts);
        assert!(res.peak_memory <= params.k);
    }

    #[test]
    #[should_panic(expected = "memory limit")]
    fn memory_limit_catches_oversubscription() {
        struct Greedy(usize);
        impl BoxAllocator for Greedy {
            fn grant(&mut self, _x: ProcId, _now: Time) -> parapage_core::Grant {
                parapage_core::Grant {
                    height: self.0,
                    duration: 100,
                }
            }
            fn on_proc_finished(&mut self, _x: ProcId, _now: Time) {}
            fn name(&self) -> &'static str {
                "greedy"
            }
        }
        let params = ModelParams::new(4, 32, 10);
        let w = seqs(4, 50, 8);
        let opts = EngineOpts {
            memory_limit: Some(params.k),
            ..Default::default()
        };
        // Four concurrent grants of k pages each: 4k > k.
        run_engine(&mut Greedy(32), &w, &params, &opts);
    }
}
