//! The box-driven execution engine: the paper's parallel paging model as an
//! event simulator.
//!
//! The engine owns one LRU cache and one sequence cursor per processor and
//! asks the policy ([`BoxAllocator`]) for a new grant exactly when a
//! processor's previous grant expires. Inside a grant of height `h` the
//! processor serves requests through an `h`-page LRU cache (hit = 1 step,
//! miss = `s`); a grant of height 0 is a stall. Grant requests are delivered
//! in global time order (a binary heap of expiry events), so policies can
//! maintain phase/chunk state keyed on the current time.
//!
//! ### Cache semantics across grants
//!
//! By default the engine uses *resize* semantics: when the new grant's
//! height is at least the old one, cache contents are kept; when it is
//! smaller, the LRU tail is truncated. The paper's WLOG
//! *compartmentalized* semantics (every box starts cold) are available via
//! [`EngineOpts::compartmentalized`] — they only make algorithms slower, so
//! measured makespans under resize semantics remain valid upper bounds for
//! the algorithms' behaviour while being closer to a real implementation.
//!
//! ### Completion-notification timing
//!
//! Although the engine simulates a whole grant at once, a processor that
//! finishes mid-grant does **not** notify the policy immediately: the
//! completion is queued as an event at its true simulated time and delivered
//! before any grant request at that time. Policies therefore observe
//! completions in exact time order, so phase transitions (DET-PAR, RAND-PAR)
//! fire at the moment the paper's model says they do.
//!
//! ### Abnormal conditions and fault injection
//!
//! The engine never panics on a misbehaving policy or a pathological
//! instance: every abnormal condition — a zero-duration grant, a memory
//! limit violation, the time cap, event-time overflow — is returned as a
//! typed [`EngineError`], so a single bad run can be observed and reported
//! without killing a sweep. The [`run_engine_faults`] entry points
//! additionally replay a deterministic [`FaultPlan`] (processor stalls,
//! fetch-latency spikes, memory pressure) against the run; see
//! [`crate::fault`] for the exact mechanics.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use parapage_cache::{
    run_window, Cache, CacheStats, Checkpoint, LruCache, PageId, ProcId, SnapReader, SnapWriter,
    Time,
};
use parapage_core::{BoxAllocator, FaultEvent, Grant, Interval, ModelParams};

use crate::arena::ChunkVec;
use crate::error::EngineError;
use crate::fault::{FaultCursor, FaultPlan};
use crate::metrics::RunResult;
use crate::snapshot::{workload_fingerprint, EngineSnapshot, SnapshotError};
use crate::trace::{NullSink, TraceEvent, TraceSink};
use crate::wal::WalDelta;

/// Default hard cap on simulated time.
///
/// A quarter of the `u64` range: generous enough that no realistic workload
/// (requests × miss penalty × spike factor) approaches it, while leaving
/// ample headroom so a single further addition to an in-range event time
/// cannot wrap — and even if a pathological `s` pushes past that, all
/// event-time arithmetic is `checked_` and surfaces
/// [`EngineError::TimeOverflow`] instead of wrapping silently.
pub const DEFAULT_MAX_TIME: Time = u64::MAX / 4;

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineOpts {
    /// Record per-processor allocation timelines (needed by the
    /// well-roundedness audit; costs memory proportional to grant count).
    pub record_timelines: bool,
    /// Start every grant with a cold cache (the paper's compartmentalized
    /// WLOG). Default `false`: resize semantics.
    pub compartmentalized: bool,
    /// Hard wall-clock cap (default [`DEFAULT_MAX_TIME`]); the engine
    /// returns [`EngineError::TimeCapExceeded`] past it (a policy that
    /// stalls everyone forever would otherwise hang the simulation).
    pub max_time: Time,
    /// When set, the engine *enforces* this bound on concurrently allocated
    /// height at grant time (returning
    /// [`EngineError::MemoryLimitExceeded`] on violation), instead of only
    /// reporting the peak post-hoc. Use it to pin a policy's resource
    /// augmentation `ξ·k` in tests. A
    /// [`FaultEvent::MemoryPressure`] event tightens (or, when unset,
    /// activates) this limit mid-run.
    pub memory_limit: Option<usize>,
}

impl Default for EngineOpts {
    fn default() -> Self {
        EngineOpts {
            record_timelines: false,
            compartmentalized: false,
            max_time: DEFAULT_MAX_TIME,
            memory_limit: None,
        }
    }
}

/// Runs `alloc` against the request sequences and measures the outcome.
///
/// `seqs[x]` is processor `x`'s request sequence; `seqs.len()` must equal
/// `params.p`.
///
/// # Errors
/// [`EngineError`] on a zero-duration grant, a memory-limit violation,
/// exceeding `opts.max_time`, or event-time overflow.
pub fn run_engine(
    alloc: &mut dyn BoxAllocator,
    seqs: &[Vec<PageId>],
    params: &ModelParams,
    opts: &EngineOpts,
) -> Result<RunResult, EngineError> {
    run_engine_with(alloc, seqs, params, opts, |_| LruCache::new(0))
}

/// Like [`run_engine`], but serving every processor's boxes through a
/// concurrent sharded LRU ([`parapage_cache::ShardedLru`]) instead of the
/// sequential [`LruCache`] — the engine integration for ROADMAP item 3's
/// concurrent substrate. The engine drives each box single-threadedly, so
/// the run is exactly as deterministic as the sequential one; with one
/// shard the results are identical to [`run_engine`] (pinned by a test).
pub fn run_engine_sharded(
    alloc: &mut dyn BoxAllocator,
    seqs: &[Vec<PageId>],
    params: &ModelParams,
    opts: &EngineOpts,
    shards: usize,
) -> Result<RunResult, EngineError> {
    run_engine_with(alloc, seqs, params, opts, |_| {
        parapage_cache::ShardedLru::with_shards(0, shards)
    })
}

/// Like [`run_engine`], but additionally replaying a [`FaultPlan`].
pub fn run_engine_faults(
    alloc: &mut dyn BoxAllocator,
    seqs: &[Vec<PageId>],
    params: &ModelParams,
    opts: &EngineOpts,
    faults: &FaultPlan,
) -> Result<RunResult, EngineError> {
    run_engine_with_faults(alloc, seqs, params, opts, faults, |_| LruCache::new(0))
}

/// Like [`run_engine`], but with a caller-chosen replacement policy inside
/// the boxes: `cache_factory(x)` builds processor `x`'s (initially empty,
/// zero-capacity) cache. The paper fixes LRU WLOG; this entry point lets
/// experiment E13 quantify how much that choice matters in practice.
pub fn run_engine_with<C: Cache>(
    alloc: &mut dyn BoxAllocator,
    seqs: &[Vec<PageId>],
    params: &ModelParams,
    opts: &EngineOpts,
    cache_factory: impl FnMut(usize) -> C,
) -> Result<RunResult, EngineError> {
    run_engine_with_faults(alloc, seqs, params, opts, &FaultPlan::none(), cache_factory)
}

/// The full engine: caller-chosen replacement policy *and* fault injection.
pub fn run_engine_with_faults<C: Cache>(
    alloc: &mut dyn BoxAllocator,
    seqs: &[Vec<PageId>],
    params: &ModelParams,
    opts: &EngineOpts,
    faults: &FaultPlan,
    cache_factory: impl FnMut(usize) -> C,
) -> Result<RunResult, EngineError> {
    run_engine_with_faults_traced(
        alloc,
        seqs,
        params,
        opts,
        faults,
        cache_factory,
        &mut NullSink,
    )
}

/// Like [`run_engine_faults`], but additionally emitting every engine step
/// to `sink` as a [`TraceEvent`] stream (see [`crate::trace`]). This is the
/// entry point of the conformance oracle.
pub fn run_engine_traced(
    alloc: &mut dyn BoxAllocator,
    seqs: &[Vec<PageId>],
    params: &ModelParams,
    opts: &EngineOpts,
    faults: &FaultPlan,
    sink: &mut impl TraceSink,
) -> Result<RunResult, EngineError> {
    run_engine_with_faults_traced(
        alloc,
        seqs,
        params,
        opts,
        faults,
        |_| LruCache::new(0),
        sink,
    )
}

/// The fully general engine: caller-chosen replacement policy, fault
/// injection, *and* trace emission. All other entry points delegate here
/// (and hence to the steppable [`Engine`]).
#[allow(clippy::too_many_arguments)]
pub fn run_engine_with_faults_traced<C: Cache>(
    alloc: &mut dyn BoxAllocator,
    seqs: &[Vec<PageId>],
    params: &ModelParams,
    opts: &EngineOpts,
    faults: &FaultPlan,
    cache_factory: impl FnMut(usize) -> C,
    sink: &mut impl TraceSink,
) -> Result<RunResult, EngineError> {
    let mut engine = Engine::new(alloc, seqs, params, opts, faults, cache_factory);
    while engine.step(alloc, sink)? {}
    Ok(engine.into_result(alloc))
}

// Events: (time, kind, proc). Completion notifications (kind 0) sort
// before grant requests (kind 1) at equal timestamps, so a policy sees
// every completion at its true simulated time before it answers any
// grant request at that time.
const EV_COMPLETION: u8 = 0;
const EV_GRANT: u8 = 1;

/// The box-driven event simulator as a resumable state machine.
///
/// [`Engine::new`] seeds the event heap; each [`Engine::step`] processes
/// exactly one event (a grant request or a completion notification) and
/// returns `Ok(false)` once the run is complete, at which point
/// [`Engine::into_result`] yields the measurements. The one-shot entry
/// points ([`run_engine`] and friends) are thin wrappers around this loop
/// and remain behaviourally identical.
///
/// The step granularity is what makes crash recovery possible: between any
/// two steps the engine can be checkpointed with [`Engine::snapshot`] and a
/// fresh engine resumed with [`Engine::restore`] — see [`crate::snapshot`]
/// for the format and [`crate::supervisor`] for the recovery loop. The
/// policy lives *outside* the engine (it is passed to every call) so that a
/// crashed attempt can be retried with a freshly-constructed policy whose
/// state is then restored from the snapshot.
pub struct Engine<'a, C: Cache> {
    seqs: &'a [Vec<PageId>],
    p: usize,
    s: u64,
    opts: EngineOpts,
    workload_digest: u64,
    pos: Vec<usize>,
    caches: Vec<C>,
    completions: Vec<Time>,
    finished: Vec<bool>,
    stats: CacheStats,
    memory_integral: u128,
    grants_issued: u64,
    timelines: Vec<Vec<Interval>>,
    // Height deltas for the peak-memory audit: (time, delta); at equal
    // times, releases (< 0) sort before acquisitions (post-hoc sort).
    // Chunked bump storage: the ledger grows for the whole run, and the
    // arena appends without ever recopying the history.
    deltas: ChunkVec<(Time, i64)>,
    // Online usage tracking for memory-limit enforcement. The enforced
    // limit starts at `opts.memory_limit` and only tightens: a
    // MemoryPressure fault activates (or shrinks) it mid-run.
    live_usage: usize,
    releases: BinaryHeap<Reverse<(Time, usize)>>,
    current_limit: Option<usize>,
    fault_cursor: FaultCursor<'a>,
    faults_injected: u64,
    heap: BinaryHeap<Reverse<(Time, u8, u32)>>,
    remaining: usize,
    ticks: u64,
    emitted: u64,
    // WAL checkpoint mark: how much of the grow-only state was already
    // captured at the last checkpoint boundary, and which caches have been
    // mutated since. `wal_delta` emits only what lies past the mark, which
    // is what makes an incremental checkpoint O(changes) rather than
    // O(state).
    ckpt_deltas_len: usize,
    ckpt_timeline_lens: Vec<usize>,
    dirty_caches: Vec<bool>,
    // Reusable scratch for batched grant dispatch (always empty between
    // steps, so it never appears in snapshots): the timestamp batch being
    // processed, the subset actually requesting grants, and the policy's
    // answers. Allocated once, reused every batch.
    batch: Vec<(u32, Option<Time>)>,
    batch_req: Vec<ProcId>,
    batch_grants: Vec<Grant>,
}

impl<'a, C: Cache> Engine<'a, C> {
    /// Builds the engine and seeds the event heap (empty sequences complete
    /// immediately, notifying the policy at time 0, exactly as the one-shot
    /// entry points always did).
    pub fn new(
        alloc: &mut dyn BoxAllocator,
        seqs: &'a [Vec<PageId>],
        params: &ModelParams,
        opts: &EngineOpts,
        faults: &'a FaultPlan,
        cache_factory: impl FnMut(usize) -> C,
    ) -> Self {
        let mut factory = cache_factory;
        assert_eq!(seqs.len(), params.p, "one sequence per processor");
        let p = params.p;
        let mut finished = vec![false; p];
        let mut heap: BinaryHeap<Reverse<(Time, u8, u32)>> = BinaryHeap::new();
        let mut remaining = 0usize;
        for x in 0..p {
            if seqs[x].is_empty() {
                finished[x] = true;
                alloc.on_proc_finished(ProcId(x as u32), 0);
            } else {
                remaining += 1;
                heap.push(Reverse((0, EV_GRANT, x as u32)));
            }
        }
        Engine {
            seqs,
            p,
            s: params.s,
            opts: *opts,
            workload_digest: workload_fingerprint(seqs),
            pos: vec![0usize; p],
            caches: (0..p).map(&mut factory).collect(),
            completions: vec![0u64; p],
            finished,
            stats: CacheStats::default(),
            memory_integral: 0,
            grants_issued: 0,
            timelines: vec![Vec::new(); p],
            deltas: ChunkVec::new(),
            live_usage: 0,
            releases: BinaryHeap::new(),
            current_limit: opts.memory_limit,
            fault_cursor: FaultCursor::new(faults),
            faults_injected: 0,
            heap,
            remaining,
            ticks: 0,
            emitted: 0,
            ckpt_deltas_len: 0,
            ckpt_timeline_lens: vec![0; p],
            dirty_caches: vec![false; p],
            batch: Vec::new(),
            batch_req: Vec::new(),
            batch_grants: Vec::new(),
        }
    }

    /// Events processed so far — the logical clock supervisors cut epochs
    /// on.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Trace events emitted so far (monotone across the whole run; a
    /// resumed engine continues the count, which is what lets a supervisor
    /// deduplicate the stream across crash boundaries).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// `true` once every event has been processed.
    pub fn is_done(&self) -> bool {
        self.heap.is_empty()
    }

    /// Declares the current state a checkpoint boundary: the next
    /// [`Engine::wal_delta`] reports changes relative to *now*. Call after
    /// installing a full snapshot as a new WAL base.
    pub fn reset_wal_mark(&mut self) {
        self.ckpt_deltas_len = self.deltas.len();
        for (n, tl) in self.ckpt_timeline_lens.iter_mut().zip(&self.timelines) {
            *n = tl.len();
        }
        for d in &mut self.dirty_caches {
            *d = false;
        }
    }

    fn emit(&mut self, sink: &mut impl TraceSink, ev: &TraceEvent) {
        self.emitted += 1;
        sink.emit(ev);
    }

    /// Processes one event. Returns `Ok(true)` while events remain,
    /// `Ok(false)` when the run is complete.
    ///
    /// # Errors
    /// The same typed [`EngineError`]s as the one-shot entry points; the
    /// engine state after an error is unspecified (resume from a snapshot,
    /// not from the errored engine).
    pub fn step(
        &mut self,
        alloc: &mut dyn BoxAllocator,
        sink: &mut impl TraceSink,
    ) -> Result<bool, EngineError> {
        let Some(Reverse((now, kind, xi))) = self.heap.pop() else {
            return Ok(false);
        };
        self.ticks += 1;
        let x = xi as usize;
        // Deliver matured fault events before any decision at `now`: the
        // policy hears about a fault no later than its first grant request
        // at-or-after the fault's timestamp.
        while let Some(ev) = self.fault_cursor.pop_due(now) {
            if let FaultEvent::MemoryPressure { new_limit, .. } = ev {
                self.current_limit =
                    Some(self.current_limit.map_or(new_limit, |l| l.min(new_limit)));
            }
            alloc.on_fault(&ev);
            self.emit(sink, &TraceEvent::Fault { at: now, event: ev });
            self.faults_injected += 1;
        }
        if kind == EV_COMPLETION {
            self.remaining -= 1;
            alloc.on_proc_finished(ProcId(xi), now);
            self.emit(
                sink,
                &TraceEvent::Completion {
                    proc: ProcId(xi),
                    at: now,
                },
            );
            return Ok(true);
        }
        if now > self.opts.max_time {
            return Err(EngineError::TimeCapExceeded {
                at: now,
                cap: self.opts.max_time,
            });
        }
        // Batched dispatch: for an oblivious policy, every grant expiring at
        // this timestamp can be decided with one policy call before any of
        // the windows run — no feedback channel exists through which window
        // `x` could influence the decision for window `y` (see
        // `BoxAllocator::oblivious`). The batch is closed once drained:
        // completions at `now` sorted *before* these grant events and were
        // already popped, and processing a grant only enqueues events
        // strictly after `now` (durations are ≥ 1, and a completion takes
        // ≥ 1 served request costing ≥ 1). Non-oblivious policies keep the
        // strict per-event interleaving.
        if alloc.oblivious() {
            debug_assert!(self.batch.is_empty());
            self.batch
                .push((xi, self.fault_cursor.stalled_until(x, now)));
            while let Some(&Reverse((t, k, yi))) = self.heap.peek() {
                if t != now || k != EV_GRANT {
                    break;
                }
                self.heap.pop();
                // The logical clock counts events processed, batched or not.
                self.ticks += 1;
                self.batch
                    .push((yi, self.fault_cursor.stalled_until(yi as usize, now)));
            }
            return self.run_grant_batch(alloc, sink, now);
        }
        // A frozen processor gets no grant: defer the request to the stall
        // window's end (recorded as a height-0 interval so timelines stay
        // contiguous).
        if let Some(until) = self.fault_cursor.stalled_until(x, now) {
            self.defer_stalled(sink, now, xi, until);
            return Ok(true);
        }
        let grant = alloc.grant(ProcId(xi), now);
        self.apply_grant(alloc, sink, now, xi, grant)?;
        Ok(true)
    }

    /// The stall-deferral path shared by the scalar and batched dispatchers:
    /// a frozen processor gets no grant; its request is re-queued at the
    /// stall window's end, recorded as a height-0 interval so timelines stay
    /// contiguous.
    fn defer_stalled(&mut self, sink: &mut impl TraceSink, now: Time, xi: u32, until: Time) {
        if self.opts.record_timelines {
            self.timelines[xi as usize].push(Interval {
                start: now,
                end: until,
                height: 0,
            });
        }
        self.emit(
            sink,
            &TraceEvent::StallDeferred {
                proc: ProcId(xi),
                at: now,
                until,
            },
        );
        self.heap.push(Reverse((until, EV_GRANT, xi)));
    }

    /// Decides and applies the timestamp batch sitting in `self.batch`
    /// (ascending processor order, as the heap popped it): one
    /// `grant_batch` call for the non-stalled processors, then windows run
    /// and trace events are emitted in exactly the order the scalar path
    /// would have produced — stalls interleaved in place.
    fn run_grant_batch(
        &mut self,
        alloc: &mut dyn BoxAllocator,
        sink: &mut impl TraceSink,
        now: Time,
    ) -> Result<bool, EngineError> {
        self.batch_req.clear();
        self.batch_req.extend(
            self.batch
                .iter()
                .filter(|(_, stalled)| stalled.is_none())
                .map(|&(yi, _)| ProcId(yi)),
        );
        self.batch_grants.clear();
        if !self.batch_req.is_empty() {
            alloc.grant_batch(&self.batch_req, now, &mut self.batch_grants);
            assert_eq!(
                self.batch_grants.len(),
                self.batch_req.len(),
                "policy {} returned {} grants for a batch of {}",
                alloc.name(),
                self.batch_grants.len(),
                self.batch_req.len(),
            );
        }
        // Move the scratch out so `apply_grant` can borrow `self`; restored
        // below to keep the allocations (an errored engine is abandoned, so
        // the early returns may leak the scratch capacity, nothing else).
        let batch = std::mem::take(&mut self.batch);
        let grants = std::mem::take(&mut self.batch_grants);
        let mut gi = 0usize;
        let mut result = Ok(());
        for &(yi, stalled) in &batch {
            if let Some(until) = stalled {
                self.defer_stalled(sink, now, yi, until);
            } else {
                let grant = grants[gi];
                gi += 1;
                result = self.apply_grant(alloc, sink, now, yi, grant);
                if result.is_err() {
                    break;
                }
            }
        }
        self.batch = batch;
        self.batch_grants = grants;
        self.batch.clear();
        result?;
        Ok(true)
    }

    /// Applies one already-decided grant for processor `xi` at `now`: runs
    /// the window, emits `Grant`/`Window`, maintains every audit ledger, and
    /// re-queues the processor's next event.
    fn apply_grant(
        &mut self,
        alloc: &mut dyn BoxAllocator,
        sink: &mut impl TraceSink,
        now: Time,
        xi: u32,
        grant: Grant,
    ) -> Result<(), EngineError> {
        let x = xi as usize;
        if grant.duration == 0 {
            return Err(EngineError::ZeroDurationGrant {
                policy: alloc.name(),
                at: now,
            });
        }
        self.grants_issued += 1;
        let end = now
            .checked_add(grant.duration)
            .ok_or(EngineError::TimeOverflow { at: now })?;
        // Effective miss penalty: scaled during an injected latency spike.
        let eff_s = self
            .s
            .checked_mul(self.fault_cursor.latency_factor(now))
            .ok_or(EngineError::TimeOverflow { at: now })?;

        // The grant path is the only place a cache mutates (clear, resize,
        // and the served window below), so this flag alone decides whether
        // the next WAL delta must re-ship processor `x`'s cache blob.
        self.dirty_caches[x] = true;
        let cache = &mut self.caches[x];
        let resident_before = cache.len();
        if self.opts.compartmentalized {
            cache.clear();
        }
        cache.resize(grant.height);
        // Pages forced out at the box boundary itself (shrink truncation,
        // or the full flush under compartmentalized semantics).
        let boundary_evictions = (resident_before - cache.len()) as u64;
        let resident_at_start = cache.len();

        let out = if grant.height == 0 {
            // Stall: no progress; the cache (already truncated to zero)
            // holds nothing.
            parapage_cache::WindowOutcome {
                end_index: self.pos[x],
                stats: CacheStats::default(),
                time_used: 0,
                finished: self.pos[x] >= self.seqs[x].len(),
            }
        } else {
            run_window(&self.seqs[x], self.pos[x], cache, grant.duration, eff_s)
        };
        let served_from = self.pos[x];
        self.pos[x] = out.end_index;
        self.stats += out.stats;
        self.memory_integral += grant.height as u128 * grant.duration as u128;
        // Peak accounting releases the allocation at completion if the
        // processor finishes mid-grant (a real allocator reclaims on
        // completion); the memory *integral* above still charges the
        // committed grant in full, matching the paper's impact accounting.
        // (`now + out.time_used` cannot overflow: `time_used ≤ duration`
        // and `now + duration` was checked.)
        let release_at = if grant.height == 0 {
            now
        } else if out.finished {
            (now + out.time_used).max(now + 1)
        } else {
            end
        };
        self.emit(
            sink,
            &TraceEvent::Grant {
                proc: ProcId(xi),
                at: now,
                height: grant.height,
                duration: grant.duration,
                release_at,
            },
        );
        // Every fetch inserts one page (when the box has capacity), so
        // insertions minus cache growth is the eviction count.
        let window_evictions = if grant.height == 0 {
            0
        } else {
            out.stats.misses - (self.caches[x].len() - resident_at_start) as u64
        };
        self.emit(
            sink,
            &TraceEvent::Window {
                proc: ProcId(xi),
                at: now,
                served: out.stats.accesses(),
                hits: out.stats.hits,
                fetches: out.stats.misses,
                evictions: boundary_evictions + window_evictions,
                time_used: out.time_used,
                finished: out.finished,
            },
        );
        if grant.height > 0 {
            self.deltas.push((now, grant.height as i64));
            self.deltas.push((release_at, -(grant.height as i64)));
            while let Some(&Reverse((t, h))) = self.releases.peek() {
                if t <= now {
                    self.releases.pop();
                    self.live_usage -= h;
                } else {
                    break;
                }
            }
            self.live_usage += grant.height;
            self.releases.push(Reverse((release_at, grant.height)));
            if let Some(limit) = self.current_limit {
                if self.live_usage > limit {
                    return Err(EngineError::MemoryLimitExceeded {
                        at: now,
                        allocated: self.live_usage,
                        limit,
                    });
                }
            }
        }
        if self.opts.record_timelines {
            self.timelines[x].push(Interval {
                start: now,
                end,
                height: grant.height,
            });
        }
        alloc.observe(ProcId(xi), &out);
        if out.end_index > served_from {
            alloc.observe_accesses(ProcId(xi), &self.seqs[x][served_from..out.end_index]);
        }

        if out.finished && !self.finished[x] {
            self.finished[x] = true;
            self.completions[x] = now + out.time_used;
            self.heap
                .push(Reverse((self.completions[x], EV_COMPLETION, xi)));
        } else if !out.finished {
            self.heap.push(Reverse((end, EV_GRANT, xi)));
        }
        Ok(())
    }

    /// Finalizes the run into a [`RunResult`]. Call only once
    /// [`Engine::step`] has returned `Ok(false)`.
    pub fn into_result(self, alloc: &dyn BoxAllocator) -> RunResult {
        debug_assert!(self.heap.is_empty());
        debug_assert_eq!(self.remaining, 0);

        // Peak concurrent memory from the delta trace.
        let mut deltas = self.deltas.to_vec();
        deltas.sort_unstable_by_key(|&(t, d)| (t, d));
        let mut cur = 0i64;
        let mut peak = 0i64;
        for &(_, d) in &deltas {
            cur += d;
            peak = peak.max(cur);
        }

        let makespan = self.completions.iter().copied().max().unwrap_or(0);
        RunResult {
            completions: self.completions,
            makespan,
            stats: self.stats,
            memory_integral: self.memory_integral,
            peak_memory: peak as usize,
            grants_issued: self.grants_issued,
            faults_injected: self.faults_injected,
            degraded_grants: alloc.degraded_grants(),
            timelines: if self.opts.record_timelines {
                Some(self.timelines)
            } else {
                None
            },
        }
    }
}

impl<'a, C: Cache + Checkpoint> Engine<'a, C> {
    /// Captures the run's full dynamic state — engine counters, event heap,
    /// per-processor caches, and the policy's own checkpoint — at the
    /// current event boundary.
    ///
    /// # Errors
    /// [`SnapshotError::Codec`] when the policy (or a green pager inside
    /// it) does not support checkpointing.
    pub fn snapshot(&self, alloc: &dyn BoxAllocator) -> Result<EngineSnapshot, SnapshotError> {
        let mut cache_blobs = Vec::with_capacity(self.p);
        for cache in &self.caches {
            let mut w = SnapWriter::new();
            cache.save(&mut w);
            cache_blobs.push(w.into_bytes());
        }
        let mut w = SnapWriter::new();
        alloc.checkpoint(&mut w)?;
        let policy_blob = w.into_bytes();
        // Heaps iterate in arbitrary internal order; serialize sorted so
        // equal states encode to equal bytes.
        let mut releases: Vec<(Time, usize)> = self.releases.iter().map(|&Reverse(e)| e).collect();
        releases.sort_unstable();
        let mut heap: Vec<(Time, u8, u32)> = self.heap.iter().map(|&Reverse(e)| e).collect();
        heap.sort_unstable();
        Ok(EngineSnapshot {
            ticks: self.ticks,
            emitted: self.emitted,
            workload_digest: self.workload_digest,
            pos: self.pos.clone(),
            completions: self.completions.clone(),
            finished: self.finished.clone(),
            stats: self.stats,
            memory_integral: self.memory_integral,
            grants_issued: self.grants_issued,
            timelines: if self.opts.record_timelines {
                self.timelines.clone()
            } else {
                Vec::new()
            },
            deltas: self.deltas.to_vec(),
            live_usage: self.live_usage,
            releases,
            current_limit: self.current_limit,
            fault_pos: self.fault_cursor.position(),
            faults_injected: self.faults_injected,
            heap,
            remaining: self.remaining,
            cache_blobs,
            policy_blob,
        })
    }

    /// Captures everything that changed since the last checkpoint boundary
    /// as a [`WalDelta`] — the payload of one WAL record — and advances the
    /// boundary to now.
    ///
    /// The delta carries the engine's O(p) scalars, the suffixes of the
    /// grow-only audit/timeline traces, the cache blobs of only the caches
    /// mutated since the mark, and the policy's full checkpoint (bounded,
    /// and the carrier of RNG position for the randomized policies). The
    /// mark is reset by a successful call, by [`Engine::restore`], and by
    /// [`Engine::reset_wal_mark`] — a supervisor resets it whenever it
    /// installs a fresh full snapshot as the new WAL base.
    ///
    /// # Errors
    /// [`SnapshotError::Codec`] when the policy does not support
    /// checkpointing; the mark is left untouched on error.
    pub fn wal_delta(&mut self, alloc: &dyn BoxAllocator) -> Result<WalDelta, SnapshotError> {
        let mut w = SnapWriter::new();
        alloc.checkpoint(&mut w)?;
        let policy_blob = w.into_bytes();
        let mut cache_updates = Vec::with_capacity(self.p);
        for (x, cache) in self.caches.iter().enumerate() {
            if self.dirty_caches[x] {
                let mut w = SnapWriter::new();
                cache.save(&mut w);
                cache_updates.push((x as u32, w.into_bytes()));
            }
        }
        let mut releases: Vec<(Time, usize)> = self.releases.iter().map(|&Reverse(e)| e).collect();
        releases.sort_unstable();
        let mut heap: Vec<(Time, u8, u32)> = self.heap.iter().map(|&Reverse(e)| e).collect();
        heap.sort_unstable();
        let delta = WalDelta {
            ticks: self.ticks,
            emitted: self.emitted,
            pos: self.pos.clone(),
            completions: self.completions.clone(),
            finished: self.finished.clone(),
            stats: self.stats,
            memory_integral: self.memory_integral,
            grants_issued: self.grants_issued,
            live_usage: self.live_usage,
            releases,
            current_limit: self.current_limit,
            fault_pos: self.fault_cursor.position(),
            faults_injected: self.faults_injected,
            heap,
            remaining: self.remaining,
            deltas_base: self.ckpt_deltas_len as u64,
            deltas_suffix: self
                .deltas
                .iter_from(self.ckpt_deltas_len)
                .copied()
                .collect(),
            timeline_bases: if self.opts.record_timelines {
                self.ckpt_timeline_lens.iter().map(|&n| n as u64).collect()
            } else {
                Vec::new()
            },
            timeline_suffixes: if self.opts.record_timelines {
                self.timelines
                    .iter()
                    .zip(&self.ckpt_timeline_lens)
                    .map(|(tl, &n)| tl[n..].to_vec())
                    .collect()
            } else {
                Vec::new()
            },
            cache_updates,
            policy_blob,
        };
        self.reset_wal_mark();
        Ok(delta)
    }

    /// Replaces this engine's dynamic state (and `alloc`'s, via
    /// `BoxAllocator::restore`) with a snapshot taken from an engine built
    /// on the same workload, parameters, and fault plan. After a successful
    /// restore the run continues byte-identically to the snapshotted one.
    ///
    /// # Errors
    /// [`SnapshotError::WorkloadMismatch`] when the snapshot was taken
    /// against different sequences; [`SnapshotError::Shape`] on a
    /// structural mismatch; [`SnapshotError::Codec`] when a cache or
    /// policy blob fails to load.
    pub fn restore(
        &mut self,
        snap: &EngineSnapshot,
        alloc: &mut dyn BoxAllocator,
    ) -> Result<(), SnapshotError> {
        if snap.workload_digest != self.workload_digest {
            return Err(SnapshotError::WorkloadMismatch {
                expected: self.workload_digest,
                found: snap.workload_digest,
            });
        }
        if snap.pos.len() != self.p
            || snap.completions.len() != self.p
            || snap.finished.len() != self.p
            || snap.cache_blobs.len() != self.p
        {
            return Err(SnapshotError::Shape("processor count"));
        }
        if !snap.timelines.is_empty() && snap.timelines.len() != self.p {
            return Err(SnapshotError::Shape("timeline count"));
        }
        for (x, &pos) in snap.pos.iter().enumerate() {
            if pos > self.seqs[x].len() {
                return Err(SnapshotError::Shape("sequence cursor out of range"));
            }
        }
        for (cache, blob) in self.caches.iter_mut().zip(&snap.cache_blobs) {
            cache.load(&mut SnapReader::new(blob))?;
        }
        alloc.restore(&mut SnapReader::new(&snap.policy_blob))?;
        self.ticks = snap.ticks;
        self.emitted = snap.emitted;
        self.pos = snap.pos.clone();
        self.completions = snap.completions.clone();
        self.finished = snap.finished.clone();
        self.stats = snap.stats;
        self.memory_integral = snap.memory_integral;
        self.grants_issued = snap.grants_issued;
        self.timelines = if snap.timelines.is_empty() {
            vec![Vec::new(); self.p]
        } else {
            snap.timelines.clone()
        };
        self.deltas.assign(&snap.deltas);
        self.live_usage = snap.live_usage;
        self.releases = snap.releases.iter().map(|&e| Reverse(e)).collect();
        self.current_limit = snap.current_limit;
        self.fault_cursor.set_position(snap.fault_pos);
        self.faults_injected = snap.faults_injected;
        self.heap = snap.heap.iter().map(|&e| Reverse(e)).collect();
        self.remaining = snap.remaining;
        // The restored state *is* the new checkpoint boundary.
        self.reset_wal_mark();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapage_core::{DetPar, Grant, RandPar, StaticPartition};

    fn cyclic_seqs(p: usize, len: usize, width: u64) -> Vec<Vec<PageId>> {
        (0..p)
            .map(|x| {
                (0..len)
                    .map(|i| PageId::namespaced(ProcId(x as u32), i as u64 % width))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn sharded_engine_with_one_shard_matches_sequential() {
        let params = ModelParams::new(4, 32, 10);
        let seqs = cyclic_seqs(4, 200, 8);
        let mut alloc = DetPar::new(&params);
        let seq_res = run_engine(&mut alloc, &seqs, &params, &EngineOpts::default()).unwrap();
        let mut alloc = DetPar::new(&params);
        let sharded_res =
            run_engine_sharded(&mut alloc, &seqs, &params, &EngineOpts::default(), 1).unwrap();
        assert_eq!(seq_res, sharded_res);
    }

    #[test]
    fn sharded_engine_with_many_shards_completes_all_requests() {
        let params = ModelParams::new(4, 32, 10);
        let seqs = cyclic_seqs(4, 150, 8);
        let mut alloc = DetPar::new(&params);
        let res =
            run_engine_sharded(&mut alloc, &seqs, &params, &EngineOpts::default(), 4).unwrap();
        assert_eq!(res.stats.accesses(), 600);
        // Deterministic: the same run reproduces bit-for-bit.
        let mut alloc = DetPar::new(&params);
        let res2 =
            run_engine_sharded(&mut alloc, &seqs, &params, &EngineOpts::default(), 4).unwrap();
        assert_eq!(res, res2);
    }

    #[test]
    fn static_partition_serves_everything() {
        let params = ModelParams::new(4, 32, 10);
        let seqs = cyclic_seqs(4, 100, 8);
        let mut alloc = StaticPartition::new(&params);
        let res = run_engine(&mut alloc, &seqs, &params, &EngineOpts::default()).unwrap();
        assert_eq!(res.stats.accesses(), 400);
        assert!(res.makespan > 0);
        assert_eq!(res.completions.len(), 4);
        // Partition of 8 holds the 8-page cycle: 8 misses + 92 hits each.
        assert_eq!(res.stats.misses, 32);
        // Completion = 8 misses * 10 + 92 hits = 172 for every processor.
        assert!(res.completions.iter().all(|&c| c == 172));
        assert!(res.peak_memory <= 32);
    }

    #[test]
    fn symmetric_processors_finish_simultaneously() {
        let params = ModelParams::new(4, 32, 10);
        let seqs = cyclic_seqs(4, 200, 16);
        let mut alloc = DetPar::new(&params);
        let res = run_engine(&mut alloc, &seqs, &params, &EngineOpts::default()).unwrap();
        assert_eq!(res.stats.accesses(), 800);
        assert!(res.makespan >= *res.completions.iter().max().unwrap());
    }

    #[test]
    fn det_par_memory_stays_within_documented_factor() {
        let params = ModelParams::new(8, 64, 10);
        let seqs = cyclic_seqs(8, 500, 24);
        let mut alloc = DetPar::new(&params);
        let res = run_engine(&mut alloc, &seqs, &params, &EngineOpts::default()).unwrap();
        assert!(
            res.peak_memory <= DetPar::MEMORY_FACTOR * params.k,
            "peak {} exceeds {}k",
            res.peak_memory,
            DetPar::MEMORY_FACTOR
        );
    }

    #[test]
    fn rand_par_completes_and_respects_memory() {
        let params = ModelParams::new(8, 64, 10);
        let seqs = cyclic_seqs(8, 400, 12);
        let mut alloc = RandPar::new(&params, 42);
        let res = run_engine(&mut alloc, &seqs, &params, &EngineOpts::default()).unwrap();
        assert_eq!(res.stats.accesses(), 8 * 400);
        // Primary (r*h_min <= k) and secondary (batch*j <= k) never exceed
        // ~2k concurrently even across chunk boundaries.
        assert!(res.peak_memory <= 2 * params.k, "peak {}", res.peak_memory);
    }

    #[test]
    fn empty_sequences_complete_at_time_zero() {
        let params = ModelParams::new(2, 8, 10);
        let seqs = vec![vec![], vec![PageId(1)]];
        let mut alloc = StaticPartition::new(&params);
        let res = run_engine(&mut alloc, &seqs, &params, &EngineOpts::default()).unwrap();
        assert_eq!(res.completions[0], 0);
        assert_eq!(res.completions[1], 10);
        assert_eq!(res.makespan, 10);
    }

    #[test]
    fn timelines_cover_each_processors_run() {
        let params = ModelParams::new(2, 8, 10);
        let seqs = cyclic_seqs(2, 50, 4);
        let mut alloc = StaticPartition::new(&params);
        let opts = EngineOpts {
            record_timelines: true,
            ..Default::default()
        };
        let res = run_engine(&mut alloc, &seqs, &params, &opts).unwrap();
        let tl = res.timelines.as_ref().unwrap();
        for (x, ivs) in tl.iter().enumerate() {
            assert!(!ivs.is_empty());
            // Contiguous, ordered intervals from 0 past the completion.
            assert_eq!(ivs[0].start, 0);
            for w in ivs.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            assert!(ivs.last().unwrap().end >= res.completions[x]);
        }
    }

    #[test]
    fn compartmentalized_runs_are_never_faster() {
        let params = ModelParams::new(4, 32, 10);
        let seqs = cyclic_seqs(4, 300, 8);
        let mut a1 = StaticPartition::new(&params);
        let plain = run_engine(&mut a1, &seqs, &params, &EngineOpts::default()).unwrap();
        let mut a2 = StaticPartition::new(&params);
        let comp = run_engine(
            &mut a2,
            &seqs,
            &params,
            &EngineOpts {
                compartmentalized: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(comp.makespan >= plain.makespan);
        assert!(comp.stats.misses >= plain.stats.misses);
    }

    #[test]
    fn eternal_stalling_returns_time_cap_error() {
        struct Staller;
        impl BoxAllocator for Staller {
            fn grant(&mut self, _x: ProcId, _now: Time) -> Grant {
                Grant::stall(1000)
            }
            fn on_proc_finished(&mut self, _x: ProcId, _now: Time) {}
            fn name(&self) -> &'static str {
                "staller"
            }
        }
        let params = ModelParams::new(1, 4, 10);
        let seqs = vec![vec![PageId(1)]];
        let opts = EngineOpts {
            max_time: 10_000,
            ..Default::default()
        };
        let err = run_engine(&mut Staller, &seqs, &params, &opts).unwrap_err();
        assert!(matches!(
            err,
            EngineError::TimeCapExceeded { cap: 10_000, .. }
        ));
    }

    #[test]
    fn zero_duration_grant_is_a_typed_error() {
        struct Degenerate;
        impl BoxAllocator for Degenerate {
            fn grant(&mut self, _x: ProcId, _now: Time) -> Grant {
                Grant {
                    height: 2,
                    duration: 0,
                }
            }
            fn on_proc_finished(&mut self, _x: ProcId, _now: Time) {}
            fn name(&self) -> &'static str {
                "degenerate"
            }
        }
        let params = ModelParams::new(1, 4, 10);
        let seqs = vec![vec![PageId(1)]];
        let err = run_engine(&mut Degenerate, &seqs, &params, &EngineOpts::default()).unwrap_err();
        assert_eq!(
            err,
            EngineError::ZeroDurationGrant {
                policy: "degenerate",
                at: 0
            }
        );
    }

    #[test]
    fn overflowing_grant_duration_is_a_typed_error() {
        // First a stall to move `now` off zero, then a grant whose end time
        // `now + u64::MAX` would wrap.
        struct Eternal(bool);
        impl BoxAllocator for Eternal {
            fn grant(&mut self, _x: ProcId, _now: Time) -> Grant {
                if !self.0 {
                    self.0 = true;
                    Grant::stall(1000)
                } else {
                    Grant {
                        height: 1,
                        duration: u64::MAX,
                    }
                }
            }
            fn on_proc_finished(&mut self, _x: ProcId, _now: Time) {}
            fn name(&self) -> &'static str {
                "eternal"
            }
        }
        let params = ModelParams::new(1, 4, 10);
        let seqs = vec![vec![PageId(1)]];
        let opts = EngineOpts {
            max_time: u64::MAX,
            ..Default::default()
        };
        let err = run_engine(&mut Eternal(false), &seqs, &params, &opts).unwrap_err();
        assert_eq!(err, EngineError::TimeOverflow { at: 1000 });
    }

    #[test]
    fn memory_integral_counts_grant_areas() {
        let params = ModelParams::new(1, 4, 10);
        // One processor, one page: StaticPartition grants height 4 for 40.
        let seqs = vec![vec![PageId(1)]];
        let mut alloc = StaticPartition::new(&params);
        let res = run_engine(&mut alloc, &seqs, &params, &EngineOpts::default()).unwrap();
        assert_eq!(res.memory_integral, 4 * 40);
        assert_eq!(res.grants_issued, 1);
    }
}

#[cfg(test)]
mod generic_engine_tests {
    use super::*;
    use parapage_cache::{ArcCache, FifoCache};
    use parapage_core::StaticPartition;

    fn seqs(p: usize, len: usize, width: u64) -> Vec<Vec<PageId>> {
        (0..p)
            .map(|x| {
                (0..len)
                    .map(|i| PageId::namespaced(ProcId(x as u32), i as u64 % width))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn alternative_replacement_policies_serve_everything() {
        let params = ModelParams::new(4, 32, 10);
        let w = seqs(4, 200, 12);
        let mut a1 = StaticPartition::new(&params);
        let fifo = run_engine_with(&mut a1, &w, &params, &EngineOpts::default(), |_| {
            FifoCache::new(0)
        })
        .unwrap();
        let mut a2 = StaticPartition::new(&params);
        let arc = run_engine_with(&mut a2, &w, &params, &EngineOpts::default(), |_| {
            ArcCache::new(0)
        })
        .unwrap();
        assert_eq!(fifo.stats.accesses(), 800);
        assert_eq!(arc.stats.accesses(), 800);
        // Same partition sizes: both must land between all-hit and all-miss.
        for r in [&fifo, &arc] {
            assert!(r.makespan >= 200 && r.makespan <= 2000);
        }
    }

    #[test]
    fn memory_limit_accepts_compliant_policies() {
        let params = ModelParams::new(4, 32, 10);
        let w = seqs(4, 300, 8);
        let mut st = StaticPartition::new(&params);
        let opts = EngineOpts {
            memory_limit: Some(params.k),
            ..Default::default()
        };
        let res = run_engine(&mut st, &w, &params, &opts).unwrap();
        assert!(res.peak_memory <= params.k);
    }

    #[test]
    fn memory_limit_catches_oversubscription() {
        struct Greedy(usize);
        impl BoxAllocator for Greedy {
            fn grant(&mut self, _x: ProcId, _now: Time) -> parapage_core::Grant {
                parapage_core::Grant {
                    height: self.0,
                    duration: 100,
                }
            }
            fn on_proc_finished(&mut self, _x: ProcId, _now: Time) {}
            fn name(&self) -> &'static str {
                "greedy"
            }
        }
        let params = ModelParams::new(4, 32, 10);
        let w = seqs(4, 50, 8);
        let opts = EngineOpts {
            memory_limit: Some(params.k),
            ..Default::default()
        };
        // Four concurrent grants of k pages each: 4k > k; the second grant
        // (at t=0) already crosses the limit.
        let err = run_engine(&mut Greedy(32), &w, &params, &opts).unwrap_err();
        assert_eq!(
            err,
            EngineError::MemoryLimitExceeded {
                at: 0,
                allocated: 64,
                limit: 32
            }
        );
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::trace::TraceRecorder;
    use parapage_core::StaticPartition;

    fn seqs(p: usize, len: usize, width: u64) -> Vec<Vec<PageId>> {
        (0..p)
            .map(|x| {
                (0..len)
                    .map(|i| PageId::namespaced(ProcId(x as u32), i as u64 % width))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn traced_run_matches_untraced_and_streams_every_step() {
        let params = ModelParams::new(4, 32, 10);
        let w = seqs(4, 120, 8);
        let mut a1 = StaticPartition::new(&params);
        let plain = run_engine(&mut a1, &w, &params, &EngineOpts::default()).unwrap();
        let mut a2 = StaticPartition::new(&params);
        let mut rec = TraceRecorder::new();
        let traced = run_engine_traced(
            &mut a2,
            &w,
            &params,
            &EngineOpts::default(),
            &FaultPlan::none(),
            &mut rec,
        )
        .unwrap();
        assert_eq!(plain.makespan, traced.makespan);
        assert_eq!(plain.stats, traced.stats);
        let grants = rec
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Grant { .. }))
            .count() as u64;
        assert_eq!(grants, traced.grants_issued);
        let windows = rec
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Window { .. }))
            .count() as u64;
        assert_eq!(windows, grants, "one window per grant");
        let completions = rec
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Completion { .. }))
            .count();
        assert_eq!(completions, 4);
        // Timestamps are non-decreasing along the stream.
        for pair in rec.events().windows(2) {
            assert!(pair[0].at() <= pair[1].at());
        }
        // Total fetched pages on the stream match the run stats.
        let fetches: u64 = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Window { fetches, .. } => Some(*fetches),
                _ => None,
            })
            .sum();
        assert_eq!(fetches, traced.stats.misses);
    }

    #[test]
    fn trace_records_fault_delivery_and_stall_deferral() {
        let params = ModelParams::new(2, 8, 10);
        let w = seqs(2, 40, 4);
        let plan = FaultPlan::new(vec![FaultEvent::ProcStall {
            proc: ProcId(0),
            from: 0,
            until: 100,
        }]);
        let mut alloc = StaticPartition::new(&params);
        let mut rec = TraceRecorder::new();
        run_engine_traced(
            &mut alloc,
            &w,
            &params,
            &EngineOpts::default(),
            &plan,
            &mut rec,
        )
        .unwrap();
        assert!(rec
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Fault { .. })));
        assert!(rec.events().iter().any(|e| matches!(
            e,
            TraceEvent::StallDeferred {
                proc: ProcId(0),
                until: 100,
                ..
            }
        )));
    }

    #[test]
    fn eviction_counts_match_compulsory_arithmetic() {
        // One processor cycling 8 pages through a 4-page box: every access
        // past the first 4 insertions evicts exactly one page.
        let params = ModelParams::new(1, 4, 10);
        let w = seqs(1, 32, 8);
        let mut alloc = StaticPartition::new(&params);
        let mut rec = TraceRecorder::new();
        let res = run_engine_traced(
            &mut alloc,
            &w,
            &params,
            &EngineOpts::default(),
            &FaultPlan::none(),
            &mut rec,
        )
        .unwrap();
        let evictions: u64 = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Window { evictions, .. } => Some(*evictions),
                _ => None,
            })
            .sum();
        // All 32 accesses miss (cycle width 8 > capacity 4); the cache ends
        // holding 4 pages, so evictions = misses - 4.
        assert_eq!(res.stats.misses, 32);
        assert_eq!(evictions, 32 - 4);
    }
}

#[cfg(test)]
mod fault_injection_tests {
    use super::*;
    use parapage_core::StaticPartition;

    fn seqs(p: usize, len: usize, width: u64) -> Vec<Vec<PageId>> {
        (0..p)
            .map(|x| {
                (0..len)
                    .map(|i| PageId::namespaced(ProcId(x as u32), i as u64 % width))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn clean_plan_matches_plain_run() {
        let params = ModelParams::new(4, 32, 10);
        let w = seqs(4, 200, 8);
        let mut a1 = StaticPartition::new(&params);
        let plain = run_engine(&mut a1, &w, &params, &EngineOpts::default()).unwrap();
        let mut a2 = StaticPartition::new(&params);
        let faulted = run_engine_faults(
            &mut a2,
            &w,
            &params,
            &EngineOpts::default(),
            &FaultPlan::none(),
        )
        .unwrap();
        assert_eq!(plain.makespan, faulted.makespan);
        assert_eq!(plain.stats, faulted.stats);
        assert_eq!(faulted.faults_injected, 0);
        assert_eq!(faulted.degraded_grants, 0);
    }

    #[test]
    fn stall_window_freezes_the_processor() {
        let params = ModelParams::new(2, 8, 10);
        let w = seqs(2, 50, 4);
        let mut a1 = StaticPartition::new(&params);
        let clean = run_engine(&mut a1, &w, &params, &EngineOpts::default()).unwrap();
        // Freeze processor 0 for a long window; its completion must slip
        // past the window's end while processor 1 is unaffected.
        let window_end = clean.makespan + 500;
        let plan = FaultPlan::new(vec![FaultEvent::ProcStall {
            proc: ProcId(0),
            from: 0,
            until: window_end,
        }]);
        let mut a2 = StaticPartition::new(&params);
        let res = run_engine_faults(&mut a2, &w, &params, &EngineOpts::default(), &plan).unwrap();
        assert!(res.completions[0] >= window_end);
        assert_eq!(res.completions[1], clean.completions[1]);
        assert_eq!(res.faults_injected, 1);
    }

    #[test]
    fn latency_spike_slows_misses_only_inside_window() {
        let params = ModelParams::new(1, 8, 10);
        let w = seqs(1, 40, 4);
        let mut a1 = StaticPartition::new(&params);
        let clean = run_engine(&mut a1, &w, &params, &EngineOpts::default()).unwrap();
        // A spike covering the whole run multiplies every miss by 5: the
        // same 4 compulsory misses cost 50 each (plus box-boundary waste
        // when a fetch no longer fits the remaining quantum).
        let plan = FaultPlan::new(vec![FaultEvent::LatencySpike {
            from: 0,
            until: u64::MAX / 8,
            factor: 5,
        }]);
        let mut a2 = StaticPartition::new(&params);
        let res = run_engine_faults(&mut a2, &w, &params, &EngineOpts::default(), &plan).unwrap();
        assert!(res.makespan > clean.makespan);
        assert!(res.makespan >= 4 * 50 + 36);
        assert_eq!(res.stats, clean.stats);
        // A spike after completion changes nothing (and is never injected).
        let late = FaultPlan::new(vec![FaultEvent::LatencySpike {
            from: clean.makespan + 1000,
            until: clean.makespan + 2000,
            factor: 5,
        }]);
        let mut a3 = StaticPartition::new(&params);
        let res2 = run_engine_faults(&mut a3, &w, &params, &EngineOpts::default(), &late).unwrap();
        assert_eq!(res2.makespan, clean.makespan);
        assert_eq!(res2.faults_injected, 0);
    }

    #[test]
    fn memory_pressure_activates_enforcement_mid_run() {
        struct Greedy;
        impl BoxAllocator for Greedy {
            fn grant(&mut self, _x: ProcId, _now: Time) -> parapage_core::Grant {
                parapage_core::Grant {
                    height: 8,
                    duration: 50,
                }
            }
            fn on_proc_finished(&mut self, _x: ProcId, _now: Time) {}
            fn name(&self) -> &'static str {
                "greedy"
            }
        }
        let params = ModelParams::new(2, 16, 10);
        let w = seqs(2, 400, 12);
        // No static memory_limit: the pressure event itself activates
        // enforcement at 4 pages, which Greedy's height-8 grants violate.
        let plan = FaultPlan::new(vec![FaultEvent::MemoryPressure {
            at: 100,
            new_limit: 4,
        }]);
        let err =
            run_engine_faults(&mut Greedy, &w, &params, &EngineOpts::default(), &plan).unwrap_err();
        assert!(matches!(
            err,
            EngineError::MemoryLimitExceeded { limit: 4, .. }
        ));
    }

    #[test]
    fn pressure_at_a_grant_tick_clamps_hardened_and_kills_raw() {
        use parapage_core::HardenedAllocator;
        // StaticPartition on p=2, k=16, s=10 grants height 8 for 80 ticks,
        // so grant requests land at exactly t = 0, 80, 160, … Deliver
        // MemoryPressure at t=80 — the same tick as the second grant. The
        // engine delivers faults before any decision at `now`, so:
        //  * the raw partition (oblivious by design) must be refused at
        //    exactly t=80 with the tightened limit;
        //  * the hardened wrapper must hear the fault first, clamp the
        //    very grant issued at t=80, and finish the run degraded.
        let params = ModelParams::new(2, 16, 10);
        let w = seqs(2, 400, 12);
        let plan = FaultPlan::new(vec![FaultEvent::MemoryPressure {
            at: 80,
            new_limit: 6,
        }]);

        let raw_err = run_engine_faults(
            &mut StaticPartition::new(&params),
            &w,
            &params,
            &EngineOpts::default(),
            &plan,
        )
        .unwrap_err();
        assert_eq!(
            raw_err,
            EngineError::MemoryLimitExceeded {
                at: 80,
                allocated: 8,
                limit: 6
            }
        );

        let mut hardened = HardenedAllocator::new(StaticPartition::new(&params), params.k);
        let res =
            run_engine_faults(&mut hardened, &w, &params, &EngineOpts::default(), &plan).unwrap();
        assert_eq!(
            res.stats.accesses(),
            2 * 400,
            "hardened run serves everything"
        );
        assert!(
            res.degraded_grants > 0,
            "the t=80 grant (and later ones) must be clamped"
        );
        assert_eq!(res.faults_injected, 1);
        // Peak before the fault is the full 2x8; an Ok result proves no
        // post-fault grant crossed the tightened limit (the engine itself
        // enforces it from t=80 on).
        assert_eq!(res.peak_memory, 16);
    }

    #[test]
    fn latency_spike_can_overflow_to_typed_error() {
        let params = ModelParams::new(1, 8, 10);
        let w = seqs(1, 10, 4);
        let plan = FaultPlan::new(vec![FaultEvent::LatencySpike {
            from: 0,
            until: 100,
            factor: u64::MAX,
        }]);
        let err = run_engine_faults(
            &mut StaticPartition::new(&params),
            &w,
            &params,
            &EngineOpts::default(),
            &plan,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::TimeOverflow { .. }));
    }
}
