//! The *fixed-rate interleaved* paging model of the early parallel-paging
//! literature (paper §1: Fiat–Karlin and successors).
//!
//! In that simplified model every processor advances one request per round
//! **regardless of hits and misses** — "a processor that incurs all hits is
//! treated as progressing at the same rate as if it incurred all misses."
//! The objective degenerates to total miss count, and, as the paper notes,
//! the model "sequentializes the interleaving", removing the interaction
//! between scheduling decisions and processor speeds.
//!
//! This simulator exists to *demonstrate that critique* (experiment E15):
//! policies can rank one way under the interleaved model's miss counts and
//! the opposite way under the true model's makespan.

use parapage_cache::{Cache, CacheStats, LruCache, PageId};

/// Result of an interleaved-model run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterleavedResult {
    /// Miss count per processor.
    pub misses: Vec<u64>,
    /// Aggregate stats.
    pub stats: CacheStats,
    /// Number of rounds executed (= longest sequence).
    pub rounds: usize,
}

/// Runs the interleaved model with a **static partition**: processor `x`
/// owns `alloc[x]` pages throughout; every round, each unfinished processor
/// issues exactly one request.
pub fn run_interleaved_partition(seqs: &[Vec<PageId>], alloc: &[usize]) -> InterleavedResult {
    assert_eq!(seqs.len(), alloc.len());
    let mut caches: Vec<LruCache> = alloc.iter().map(|&c| LruCache::new(c)).collect();
    run_rounds(seqs, |x, page| caches[x].access(page).is_hit())
}

/// Runs the interleaved model with one **shared LRU** of `k` pages.
pub fn run_interleaved_shared(seqs: &[Vec<PageId>], k: usize) -> InterleavedResult {
    let mut cache = LruCache::new(k);
    run_rounds(seqs, |_x, page| cache.access(page).is_hit())
}

fn run_rounds(
    seqs: &[Vec<PageId>],
    mut access: impl FnMut(usize, PageId) -> bool,
) -> InterleavedResult {
    let rounds = seqs.iter().map(Vec::len).max().unwrap_or(0);
    let mut misses = vec![0u64; seqs.len()];
    let mut stats = CacheStats::default();
    for r in 0..rounds {
        for (x, seq) in seqs.iter().enumerate() {
            if let Some(&page) = seq.get(r) {
                let hit = access(x, page);
                stats.record(hit);
                if !hit {
                    misses[x] += 1;
                }
            }
        }
    }
    InterleavedResult {
        misses,
        stats,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapage_cache::ProcId;

    fn cyc(x: u32, width: u64, len: usize) -> Vec<PageId> {
        (0..len)
            .map(|i| PageId::namespaced(ProcId(x), i as u64 % width))
            .collect()
    }

    #[test]
    fn partition_counts_match_independent_lru() {
        let seqs = vec![cyc(0, 4, 100), cyc(1, 8, 100)];
        let res = run_interleaved_partition(&seqs, &[4, 4]);
        // Proc 0 fits: 4 compulsory. Proc 1 cycles 8 in 4: all miss.
        assert_eq!(res.misses[0], 4);
        assert_eq!(res.misses[1], 100);
        assert_eq!(res.rounds, 100);
    }

    #[test]
    fn shared_model_interleaves_round_robin() {
        // Two procs, disjoint 4-page cycles, shared cache 8: both fit.
        let seqs = vec![cyc(0, 4, 60), cyc(1, 4, 60)];
        let res = run_interleaved_shared(&seqs, 8);
        assert_eq!(res.stats.misses, 8);
    }

    #[test]
    fn fixed_rate_ignores_miss_speed() {
        // The defining property: a proc with all misses still finishes in
        // `rounds` rounds — no makespan interaction at all.
        let seqs = vec![cyc(0, 50, 50), cyc(1, 2, 50)];
        let res = run_interleaved_partition(&seqs, &[1, 2]);
        assert_eq!(res.rounds, 50);
        assert_eq!(res.misses[0], 50);
        assert_eq!(res.misses[1], 2);
    }

    #[test]
    fn uneven_lengths_handled() {
        let seqs = vec![cyc(0, 2, 10), cyc(1, 2, 30)];
        let res = run_interleaved_shared(&seqs, 8);
        assert_eq!(res.rounds, 30);
        assert_eq!(res.stats.accesses(), 40);
    }
}
