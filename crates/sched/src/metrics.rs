//! Result types shared by the execution engines.

use parapage_cache::{CacheStats, Time};
use parapage_core::Interval;

/// The measured outcome of one parallel paging run.
///
/// Equality is field-wise and exact — the resume-equivalence checker in
/// `parapage-conform` relies on a recovered run's result comparing equal to
/// the uninterrupted run's.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Completion time of each processor.
    pub completions: Vec<Time>,
    /// `max` of completions — the paper's primary objective.
    pub makespan: Time,
    /// Aggregate hit/miss counts across all processors.
    pub stats: CacheStats,
    /// Integral of allocated cache height over time, across all grants
    /// (grants are charged in full, including the tail of the grant during
    /// which a processor finished — allocations are committed, as in the
    /// paper's impact accounting).
    pub memory_integral: u128,
    /// Peak concurrently-allocated height, for auditing the resource
    /// augmentation `ξ` a policy actually used.
    pub peak_memory: usize,
    /// Number of grants the policy issued.
    pub grants_issued: u64,
    /// Number of injected fault events actually delivered during the run
    /// (events scheduled after the last processor finished are never
    /// delivered and not counted).
    pub faults_injected: u64,
    /// Number of grants the policy degraded (clamped, backed off, or
    /// converted to stalls) to respect a shrunken memory budget; reported
    /// by the policy via `BoxAllocator::degraded_grants`.
    pub degraded_grants: u64,
    /// Per-processor allocation timelines (when recording was requested).
    pub timelines: Option<Vec<Vec<Interval>>>,
}

impl RunResult {
    /// Mean completion time — the paper's secondary objective
    /// (Corollary 3).
    ///
    /// Accumulates in `u128` so that long runs (completion times near
    /// `u64::MAX`) sum exactly instead of losing low bits to incremental
    /// `f64` rounding.
    pub fn mean_completion(&self) -> f64 {
        if self.completions.is_empty() {
            return 0.0;
        }
        let sum: u128 = self.completions.iter().map(|&c| c as u128).sum();
        sum as f64 / self.completions.len() as f64
    }

    /// Total service time summed over processors (`Σ hits + s·misses`),
    /// widened to `u128`: with `~2⁶⁰` misses and a large `s` the natural
    /// `u64` product wraps silently.
    pub fn total_work(&self, s: u64) -> u128 {
        self.stats.service_time_wide(s)
    }

    /// Per-processor completion times as CSV (`proc,completion` rows), for
    /// downstream plotting.
    pub fn completions_csv(&self) -> String {
        let mut out = String::from("proc,completion\n");
        for (x, c) in self.completions.iter().enumerate() {
            out.push_str(&format!("{x},{c}\n"));
        }
        out
    }

    /// One-line human summary.
    pub fn summary_line(&self) -> String {
        format!(
            "makespan {} | mean completion {:.0} | misses {} / {} | peak mem {}",
            self.makespan,
            self.mean_completion(),
            self.stats.misses,
            self.stats.accesses(),
            self.peak_memory
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_completion_averages() {
        let r = RunResult {
            completions: vec![10, 20, 30],
            makespan: 30,
            stats: CacheStats::default(),
            memory_integral: 0,
            peak_memory: 0,
            grants_issued: 0,
            faults_injected: 0,
            degraded_grants: 0,
            timelines: None,
        };
        assert!((r.mean_completion() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn csv_and_summary_render() {
        let r = RunResult {
            completions: vec![5, 9],
            makespan: 9,
            stats: CacheStats { hits: 3, misses: 2 },
            memory_integral: 10,
            peak_memory: 4,
            grants_issued: 2,
            faults_injected: 0,
            degraded_grants: 0,
            timelines: None,
        };
        assert_eq!(r.completions_csv(), "proc,completion\n0,5\n1,9\n");
        let s = r.summary_line();
        assert!(s.contains("makespan 9") && s.contains("peak mem 4"));
    }

    #[test]
    fn mean_completion_survives_u64_scale_runs() {
        // Regression: summing near-u64::MAX completions must accumulate in
        // u128 — a u64 accumulator wraps, and the wrapped mean would be
        // wildly wrong (here: tiny instead of ≈ u64::MAX).
        let r = RunResult {
            completions: vec![u64::MAX, u64::MAX, u64::MAX],
            makespan: u64::MAX,
            stats: CacheStats::default(),
            memory_integral: 0,
            peak_memory: 0,
            grants_issued: 0,
            faults_injected: 0,
            degraded_grants: 0,
            timelines: None,
        };
        let mean = r.mean_completion();
        assert!(mean.is_finite());
        let expect = u64::MAX as f64;
        assert!((mean - expect).abs() / expect < 1e-12, "mean {mean}");
    }

    #[test]
    fn total_work_is_overflow_safe() {
        // hits + s·misses > u64::MAX: the widened accumulation must return
        // the exact value instead of wrapping.
        let r = RunResult {
            completions: vec![1],
            makespan: 1,
            stats: CacheStats {
                hits: 7,
                misses: u64::MAX / 2,
            },
            memory_integral: 0,
            peak_memory: 0,
            grants_issued: 0,
            faults_injected: 0,
            degraded_grants: 0,
            timelines: None,
        };
        let s = 1000u64;
        let expect = 7u128 + 1000u128 * (u64::MAX / 2) as u128;
        assert!(expect > u64::MAX as u128, "test premise: must not fit u64");
        assert_eq!(r.total_work(s), expect);
    }

    #[test]
    fn empty_run_has_zero_mean() {
        let r = RunResult {
            completions: vec![],
            makespan: 0,
            stats: CacheStats::default(),
            memory_integral: 0,
            peak_memory: 0,
            grants_issued: 0,
            faults_injected: 0,
            degraded_grants: 0,
            timelines: None,
        };
        assert_eq!(r.mean_completion(), 0.0);
    }
}
