//! Step-level simulator of a globally shared LRU cache.
//!
//! The paper's model lets the paging algorithm *partition* the cache; the
//! natural systems baseline is to not partition at all and let `p`
//! processors thrash one global LRU. This simulator measures that baseline
//! (experiment E8): each processor has its own channel (misses do not
//! contend for bandwidth), but every access goes through one shared
//! `k`-page LRU, so one scan-heavy processor can evict everyone else's
//! working set.
//!
//! Accesses are interleaved in event order: the processor with the earliest
//! next-free time issues its next request. Ties break by processor index,
//! making runs deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use parapage_cache::{Cache, CacheStats, LruCache, PageId, Time};

use crate::metrics::RunResult;

/// Runs all sequences against one shared LRU cache of `k` pages with miss
/// penalty `s`, returning completion metrics.
pub fn run_shared_lru(seqs: &[Vec<PageId>], k: usize, s: u64) -> RunResult {
    let p = seqs.len();
    let mut cache = LruCache::new(k);
    let mut pos = vec![0usize; p];
    let mut completions = vec![0u64; p];
    let mut stats = CacheStats::default();
    // Min-heap of (time at which the processor issues its next request, x).
    let mut heap: BinaryHeap<Reverse<(Time, usize)>> = BinaryHeap::new();
    for (x, seq) in seqs.iter().enumerate() {
        if !seq.is_empty() {
            heap.push(Reverse((0, x)));
        }
    }
    while let Some(Reverse((now, x))) = heap.pop() {
        let page = seqs[x][pos[x]];
        let hit = cache.access(page).is_hit();
        stats.record(hit);
        let done_at = now + if hit { 1 } else { s };
        pos[x] += 1;
        if pos[x] == seqs[x].len() {
            completions[x] = done_at;
        } else {
            heap.push(Reverse((done_at, x)));
        }
    }
    let makespan = completions.iter().copied().max().unwrap_or(0);
    RunResult {
        completions,
        makespan,
        stats,
        memory_integral: k as u128 * makespan as u128,
        peak_memory: k,
        grants_issued: 0,
        faults_injected: 0,
        degraded_grants: 0,
        timelines: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapage_cache::ProcId;

    fn ns(x: u32, v: u64) -> PageId {
        PageId::namespaced(ProcId(x), v)
    }

    #[test]
    fn single_processor_matches_plain_lru_timing() {
        // One proc, cycle of 4 pages, cache 8: 4 misses + 16 hits.
        let seq: Vec<PageId> = (0..20).map(|i| ns(0, i % 4)).collect();
        let res = run_shared_lru(&[seq], 8, 10);
        assert_eq!(res.stats.misses, 4);
        assert_eq!(res.makespan, 4 * 10 + 16);
    }

    #[test]
    fn disjoint_working_sets_that_fit_share_peacefully() {
        // 2 procs, 4 pages each, cache 8: both fit; only compulsory misses.
        let seqs: Vec<Vec<PageId>> = (0..2)
            .map(|x| (0..40).map(|i| ns(x, i % 4)).collect())
            .collect();
        let res = run_shared_lru(&seqs, 8, 10);
        assert_eq!(res.stats.misses, 8);
    }

    #[test]
    fn oversubscription_causes_thrash() {
        // 4 procs cycling 8 pages each (32 total) through a 16-page cache:
        // the interleaved cycles evict each other continuously.
        let seqs: Vec<Vec<PageId>> = (0..4)
            .map(|x| (0..100).map(|i| ns(x, i % 8)).collect())
            .collect();
        let res = run_shared_lru(&seqs, 16, 10);
        let total = res.stats.accesses();
        assert!(
            res.stats.misses as f64 > 0.5 * total as f64,
            "expected thrash, got {} misses of {}",
            res.stats.misses,
            total
        );
    }

    #[test]
    fn completion_times_are_per_processor() {
        // Proc 0 has 1 request, proc 1 has 10; both all-miss (distinct).
        let seqs = vec![
            vec![ns(0, 0)],
            (0..10).map(|i| ns(1, i)).collect::<Vec<_>>(),
        ];
        let res = run_shared_lru(&seqs, 4, 10);
        assert_eq!(res.completions[0], 10);
        assert_eq!(res.completions[1], 100);
        assert_eq!(res.makespan, 100);
    }

    #[test]
    fn empty_input() {
        let res = run_shared_lru(&[], 4, 10);
        assert_eq!(res.makespan, 0);
    }
}

/// Like [`run_shared_lru`], but with a bounded fetch bandwidth: at most
/// `max_inflight` page transfers may be in progress at once, modelling a
/// shared memory channel instead of the paper's per-processor channels.
///
/// With `max_inflight >= p` this degenerates to [`run_shared_lru`]; small
/// values expose the serialization a real memory bus adds on miss-heavy
/// workloads (a model extension, not a paper claim).
pub fn run_shared_lru_bandwidth(
    seqs: &[Vec<PageId>],
    k: usize,
    s: u64,
    max_inflight: usize,
) -> RunResult {
    assert!(max_inflight >= 1);
    let p = seqs.len();
    let mut cache = LruCache::new(k);
    let mut pos = vec![0usize; p];
    let mut completions = vec![0u64; p];
    let mut stats = CacheStats::default();
    // Fetch "slots": the time each channel becomes free.
    let mut slots: BinaryHeap<Reverse<Time>> = (0..max_inflight).map(|_| Reverse(0)).collect();
    let mut heap: BinaryHeap<Reverse<(Time, usize)>> = BinaryHeap::new();
    for (x, seq) in seqs.iter().enumerate() {
        if !seq.is_empty() {
            heap.push(Reverse((0, x)));
        }
    }
    while let Some(Reverse((now, x))) = heap.pop() {
        let page = seqs[x][pos[x]];
        let hit = cache.access(page).is_hit();
        stats.record(hit);
        let done_at = if hit {
            now + 1
        } else {
            let Reverse(free) = slots.pop().expect("slot heap never empty");
            let start = free.max(now);
            let end = start + s;
            slots.push(Reverse(end));
            end
        };
        pos[x] += 1;
        if pos[x] == seqs[x].len() {
            completions[x] = done_at;
        } else {
            heap.push(Reverse((done_at, x)));
        }
    }
    let makespan = completions.iter().copied().max().unwrap_or(0);
    RunResult {
        completions,
        makespan,
        stats,
        memory_integral: k as u128 * makespan as u128,
        peak_memory: k,
        grants_issued: 0,
        faults_injected: 0,
        degraded_grants: 0,
        timelines: None,
    }
}

#[cfg(test)]
mod bandwidth_tests {
    use super::*;
    use parapage_cache::ProcId;

    fn fresh(x: u32, len: usize) -> Vec<PageId> {
        (0..len)
            .map(|i| PageId::namespaced(ProcId(x), i as u64))
            .collect()
    }

    #[test]
    fn ample_bandwidth_matches_unlimited() {
        let seqs: Vec<Vec<PageId>> = (0..4).map(|x| fresh(x, 50)).collect();
        let unlimited = run_shared_lru(&seqs, 16, 10);
        let ample = run_shared_lru_bandwidth(&seqs, 16, 10, 4);
        assert_eq!(unlimited.makespan, ample.makespan);
        assert_eq!(unlimited.stats, ample.stats);
    }

    #[test]
    fn single_channel_serializes_misses() {
        // 4 procs, all-miss streams of 25: one channel must do 100 fetches
        // back-to-back.
        let seqs: Vec<Vec<PageId>> = (0..4).map(|x| fresh(x, 25)).collect();
        let res = run_shared_lru_bandwidth(&seqs, 16, 10, 1);
        assert_eq!(res.makespan, 100 * 10);
    }

    #[test]
    fn bandwidth_only_hurts() {
        let seqs: Vec<Vec<PageId>> = (0..4)
            .map(|x| {
                (0..200)
                    .map(|i| PageId::namespaced(ProcId(x), i as u64 % 12))
                    .collect()
            })
            .collect();
        let m_unlimited = run_shared_lru(&seqs, 24, 10).makespan;
        let m2 = run_shared_lru_bandwidth(&seqs, 24, 10, 2).makespan;
        let m1 = run_shared_lru_bandwidth(&seqs, 24, 10, 1).makespan;
        assert!(m_unlimited <= m2);
        assert!(m2 <= m1);
    }

    #[test]
    fn hits_never_wait_for_bandwidth() {
        // Single proc cycling in-cache: only 4 fetches regardless of slots.
        let seqs = vec![(0..100)
            .map(|i| PageId::namespaced(ProcId(0), i as u64 % 4))
            .collect::<Vec<_>>()];
        let res = run_shared_lru_bandwidth(&seqs, 8, 10, 1);
        assert_eq!(res.makespan, 4 * 10 + 96);
    }
}
