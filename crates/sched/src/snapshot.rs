//! Engine snapshots: the full dynamic state of a run, captured at an event
//! boundary, serializable to a framed byte blob and restorable into a
//! freshly-constructed [`crate::engine::Engine`].
//!
//! A snapshot captures *everything* the engine needs to resume
//! byte-identically: the event-heap contents, per-processor sequence
//! cursors and completion state, aggregate counters, the peak-memory delta
//! trace, the fault-plan delivery position, the per-processor replacement
//! cache contents (via `parapage_cache::Checkpoint`), and the policy's own
//! state (via `BoxAllocator::checkpoint` — RNG position included for the
//! randomized policies). The resume-equivalence contract — a run resumed
//! from any snapshot produces the same [`crate::RunResult`] and the same
//! trace suffix as the uninterrupted run — is enforced by the
//! `parapage-conform` crate's resume checker and the `parapage chaos` CLI
//! matrix.
//!
//! ### Wire format
//!
//! [`EngineSnapshot::encode`] produces the workspace's standard framed blob
//! (see `parapage_cache::checkpoint`): magic `b"ppsn"`, a version tag, the
//! payload, and an FNV-1a64 integrity digest. A corrupted blob — bit flip,
//! truncation, wrong magic — is rejected by [`EngineSnapshot::decode`] with
//! a typed [`SnapshotError`], never a panic. Encoding is canonical: equal
//! snapshots encode to equal bytes (heaps are serialized sorted).

use std::error::Error;
use std::fmt;

use parapage_cache::{decode_framed, CacheStats, CodecError, PageId, SnapReader, SnapWriter, Time};
use parapage_core::Interval;

/// FNV-1a64 fingerprint of a workload (all sequences, lengths included), so
/// a snapshot can refuse to resume against a different workload.
pub fn workload_fingerprint(seqs: &[Vec<PageId>]) -> u64 {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = BASIS;
    let mut eat = |word: u64| {
        for b in word.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(seqs.len() as u64);
    for seq in seqs {
        eat(seq.len() as u64);
        for &PageId(pg) in seq {
            eat(pg);
        }
    }
    h
}

/// Why a snapshot could not be taken, encoded, decoded, or restored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte codec rejected the blob (corruption, truncation, an
    /// unsupported policy, or an invalid field).
    Codec(CodecError),
    /// The snapshot was taken against a different workload than the engine
    /// being restored.
    WorkloadMismatch {
        /// Fingerprint of the engine's workload.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        found: u64,
    },
    /// A structural mismatch between the snapshot and the receiving engine
    /// (processor count, option flags).
    Shape(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Codec(e) => write!(f, "snapshot codec: {e}"),
            SnapshotError::WorkloadMismatch { expected, found } => write!(
                f,
                "snapshot taken against a different workload \
                 (engine {expected:#018x}, snapshot {found:#018x})"
            ),
            SnapshotError::Shape(what) => write!(f, "snapshot shape mismatch: {what}"),
        }
    }
}

impl Error for SnapshotError {}

impl From<CodecError> for SnapshotError {
    fn from(e: CodecError) -> Self {
        SnapshotError::Codec(e)
    }
}

/// The full dynamic state of an engine run at an event boundary.
///
/// Produced by `Engine::snapshot`, consumed by `Engine::restore`; see the
/// module docs for the wire format and the resume-equivalence contract.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineSnapshot {
    /// Events processed so far (the engine's logical clock for epochs).
    pub ticks: u64,
    /// Trace events emitted so far (lets a supervisor deduplicate the
    /// stream across crash/resume boundaries).
    pub emitted: u64,
    /// [`workload_fingerprint`] of the sequences the run was started on.
    pub workload_digest: u64,
    /// Per-processor next-request index.
    pub pos: Vec<usize>,
    /// Per-processor completion times (0 while unfinished).
    pub completions: Vec<Time>,
    /// Per-processor finished flags.
    pub finished: Vec<bool>,
    /// Aggregate hit/miss counters.
    pub stats: CacheStats,
    /// Memory impact accumulated so far.
    pub memory_integral: u128,
    /// Grants issued so far.
    pub grants_issued: u64,
    /// Per-processor allocation timelines (empty unless recording).
    pub timelines: Vec<Vec<Interval>>,
    /// Height deltas for the peak-memory audit, in emission order.
    pub deltas: Vec<(Time, i64)>,
    /// Concurrently-allocated height at the snapshot instant.
    pub live_usage: usize,
    /// Pending releases `(time, height)`, sorted.
    pub releases: Vec<(Time, usize)>,
    /// The enforced memory limit currently in effect.
    pub current_limit: Option<usize>,
    /// Fault-plan delivery position (events already delivered).
    pub fault_pos: usize,
    /// Faults delivered so far.
    pub faults_injected: u64,
    /// Pending events `(time, kind, proc)`, sorted.
    pub heap: Vec<(Time, u8, u32)>,
    /// Processors not yet completion-notified.
    pub remaining: usize,
    /// Per-processor replacement-cache state, one `Checkpoint` blob each.
    pub cache_blobs: Vec<Vec<u8>>,
    /// The policy's `BoxAllocator::checkpoint` blob.
    pub policy_blob: Vec<u8>,
}

impl EngineSnapshot {
    /// Serializes into the framed wire format (magic + version + payload +
    /// FNV digest). Canonical: equal snapshots encode to equal bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_u64(self.ticks);
        w.put_u64(self.emitted);
        w.put_u64(self.workload_digest);
        let p = self.pos.len();
        w.put_len(p);
        for &v in &self.pos {
            w.put_usize(v);
        }
        for &c in &self.completions {
            w.put_u64(c);
        }
        for &f in &self.finished {
            w.put_bool(f);
        }
        w.put_u64(self.stats.hits);
        w.put_u64(self.stats.misses);
        w.put_u128(self.memory_integral);
        w.put_u64(self.grants_issued);
        w.put_len(self.timelines.len());
        for tl in &self.timelines {
            w.put_len(tl.len());
            for iv in tl {
                w.put_u64(iv.start);
                w.put_u64(iv.end);
                w.put_usize(iv.height);
            }
        }
        w.put_len(self.deltas.len());
        for &(t, d) in &self.deltas {
            w.put_u64(t);
            w.put_i64(d);
        }
        w.put_usize(self.live_usage);
        w.put_len(self.releases.len());
        for &(t, h) in &self.releases {
            w.put_u64(t);
            w.put_usize(h);
        }
        match self.current_limit {
            Some(l) => {
                w.put_bool(true);
                w.put_usize(l);
            }
            None => w.put_bool(false),
        }
        w.put_usize(self.fault_pos);
        w.put_u64(self.faults_injected);
        w.put_len(self.heap.len());
        for &(t, kind, proc) in &self.heap {
            w.put_u64(t);
            w.put_u8(kind);
            w.put_u32(proc);
        }
        w.put_usize(self.remaining);
        w.put_len(self.cache_blobs.len());
        for blob in &self.cache_blobs {
            w.put_bytes(blob);
        }
        w.put_bytes(&self.policy_blob);
        w.into_framed()
    }

    /// Parses a framed blob back into a snapshot, verifying the integrity
    /// digest first.
    ///
    /// # Errors
    /// [`SnapshotError::Codec`] on a corrupted, truncated, or structurally
    /// invalid blob.
    pub fn decode(blob: &[u8]) -> Result<Self, SnapshotError> {
        let payload = decode_framed(blob)?;
        let mut r = SnapReader::new(payload);
        let ticks = r.get_u64()?;
        let emitted = r.get_u64()?;
        let workload_digest = r.get_u64()?;
        let p = r.get_len()?;
        let mut pos = Vec::with_capacity(p);
        for _ in 0..p {
            pos.push(r.get_usize()?);
        }
        let mut completions = Vec::with_capacity(p);
        for _ in 0..p {
            completions.push(r.get_u64()?);
        }
        let mut finished = Vec::with_capacity(p);
        for _ in 0..p {
            finished.push(r.get_bool()?);
        }
        let stats = CacheStats {
            hits: r.get_u64()?,
            misses: r.get_u64()?,
        };
        let memory_integral = r.get_u128()?;
        let grants_issued = r.get_u64()?;
        let n_tl = r.get_len()?;
        if n_tl != 0 && n_tl != p {
            return Err(SnapshotError::Shape("timeline count"));
        }
        let mut timelines = Vec::with_capacity(n_tl);
        for _ in 0..n_tl {
            let n = r.get_len()?;
            let mut tl = Vec::with_capacity(n);
            for _ in 0..n {
                let start = r.get_u64()?;
                let end = r.get_u64()?;
                let height = r.get_usize()?;
                tl.push(Interval { start, end, height });
            }
            timelines.push(tl);
        }
        let n_deltas = r.get_len()?;
        let mut deltas = Vec::with_capacity(n_deltas);
        for _ in 0..n_deltas {
            let t = r.get_u64()?;
            let d = r.get_i64()?;
            deltas.push((t, d));
        }
        let live_usage = r.get_usize()?;
        let n_rel = r.get_len()?;
        let mut releases = Vec::with_capacity(n_rel);
        for _ in 0..n_rel {
            let t = r.get_u64()?;
            let h = r.get_usize()?;
            releases.push((t, h));
        }
        let current_limit = if r.get_bool()? {
            Some(r.get_usize()?)
        } else {
            None
        };
        let fault_pos = r.get_usize()?;
        let faults_injected = r.get_u64()?;
        let n_heap = r.get_len()?;
        let mut heap = Vec::with_capacity(n_heap);
        for _ in 0..n_heap {
            let t = r.get_u64()?;
            let kind = r.get_u8()?;
            if kind > 1 {
                return Err(SnapshotError::Codec(CodecError::Invalid(
                    "unknown event kind in snapshot heap",
                )));
            }
            let proc = r.get_u32()?;
            heap.push((t, kind, proc));
        }
        let remaining = r.get_usize()?;
        let n_caches = r.get_len()?;
        if n_caches != p {
            return Err(SnapshotError::Shape("cache blob count"));
        }
        let mut cache_blobs = Vec::with_capacity(n_caches);
        for _ in 0..n_caches {
            cache_blobs.push(r.get_bytes()?.to_vec());
        }
        let policy_blob = r.get_bytes()?.to_vec();
        Ok(EngineSnapshot {
            ticks,
            emitted,
            workload_digest,
            pos,
            completions,
            finished,
            stats,
            memory_integral,
            grants_issued,
            timelines,
            deltas,
            live_usage,
            releases,
            current_limit,
            fault_pos,
            faults_injected,
            heap,
            remaining,
            cache_blobs,
            policy_blob,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EngineSnapshot {
        EngineSnapshot {
            ticks: 42,
            emitted: 99,
            workload_digest: 0xdead_beef,
            pos: vec![3, 7],
            completions: vec![0, 120],
            finished: vec![false, true],
            stats: CacheStats {
                hits: 10,
                misses: 4,
            },
            memory_integral: 1 << 70,
            grants_issued: 9,
            timelines: vec![
                vec![Interval {
                    start: 0,
                    end: 40,
                    height: 4,
                }],
                vec![],
            ],
            deltas: vec![(0, 4), (40, -4)],
            live_usage: 4,
            releases: vec![(40, 4)],
            current_limit: Some(16),
            fault_pos: 1,
            faults_injected: 1,
            heap: vec![(40, 1, 0)],
            remaining: 1,
            cache_blobs: vec![vec![1, 2, 3], vec![]],
            policy_blob: vec![9, 9],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let snap = sample();
        let blob = snap.encode();
        let back = EngineSnapshot::decode(&blob).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn encoding_is_canonical() {
        let snap = sample();
        assert_eq!(snap.encode(), snap.clone().encode());
    }

    #[test]
    fn corruption_is_detected_not_panicked() {
        let mut blob = sample().encode();
        let mid = blob.len() / 2;
        blob[mid] ^= 0x40;
        assert!(matches!(
            EngineSnapshot::decode(&blob),
            Err(SnapshotError::Codec(CodecError::DigestMismatch { .. }))
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let blob = sample().encode();
        assert!(EngineSnapshot::decode(&blob[..blob.len() - 3]).is_err());
        assert!(EngineSnapshot::decode(&[]).is_err());
    }

    #[test]
    fn workload_fingerprint_distinguishes_sequences() {
        let a = vec![vec![PageId(1), PageId(2)], vec![PageId(3)]];
        let b = vec![vec![PageId(1)], vec![PageId(2), PageId(3)]];
        let c = vec![vec![PageId(1), PageId(2)], vec![PageId(4)]];
        assert_ne!(workload_fingerprint(&a), workload_fingerprint(&b));
        assert_ne!(workload_fingerprint(&a), workload_fingerprint(&c));
        assert_eq!(workload_fingerprint(&a), workload_fingerprint(&a.clone()));
    }
}
