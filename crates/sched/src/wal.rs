//! Write-ahead delta log between full snapshots.
//!
//! A full [`EngineSnapshot`] costs O(state) to encode — and the state
//! grows with the run (the peak-memory audit trace and the optional
//! timelines accumulate one entry per grant forever), so snapshotting
//! every epoch trades checkpoint frequency directly against throughput.
//! This module makes the per-epoch checkpoint O(changes) instead: between
//! full snapshots, each epoch appends one framed *delta record* describing
//! only what changed since the previous record.
//!
//! ### Record framing and the digest chain
//!
//! Records use the framing primitives in `parapage_cache::checkpoint`:
//!
//! ```text
//! MAGIC b"ppwr" | seq u64 | payload_len u32 | payload … | digest u64
//! ```
//!
//! `digest = fnv1a64_seeded(chain, seq ‖ len ‖ payload)` where `chain` is
//! the previous record's digest, and the *first* record is seeded with the
//! FNV-1a digest of the base snapshot's encoded bytes. The chain is what
//! makes recovery torn-write tolerant **and** base-aware: a record only
//! verifies in the exact position it was appended at, after the exact base
//! it was appended to. Pairing a stale base with a newer log, reordering
//! records, or flipping one byte anywhere breaks the chain at that point.
//!
//! ### Typed delta payload
//!
//! A [`WalDelta`] payload is a sequence of tagged sections — engine
//! scalars, the suffix of the peak-memory audit trace, timeline suffixes,
//! the cache blobs of exactly the caches mutated during the epoch, the
//! policy's full checkpoint (which contains the randomized policies' RNG
//! position, so every RNG draw of the epoch is captured), and the
//! trace-sequence high-water mark used for crash-boundary deduplication.
//! [`WalDelta::apply`] folds a record into a base [`EngineSnapshot`],
//! validating that the record actually extends that base (suffix base
//! lengths, processor counts, monotone counters) so a chain-valid but
//! mismatched record can never silently mis-restore.
//!
//! ### Recovery scan
//!
//! [`recover`] replays a `(base, log)` pair: decode the base, then apply
//! records until the log ends cleanly **or** the first record whose frame,
//! digest, chain, sequence, or payload breaks — everything after a tear is
//! discarded ([`WalTruncation`] reports where and why, as a typed
//! [`CodecError`]), and the run resumes from the last intact record. The
//! resume-equivalence contract is unchanged: the reconstructed snapshot is
//! byte-identical to the full snapshot the engine would have produced at
//! that epoch boundary (pinned by proptests in `parapage-conform`).

use parapage_cache::{
    fnv1a64, frame_wal_record, parse_wal_record, CacheStats, CodecError, SnapReader, SnapWriter,
    Time, WalRecordStep,
};
use parapage_core::Interval;

use crate::snapshot::{EngineSnapshot, SnapshotError};

/// Section tags of a [`WalDelta`] payload, in canonical order.
const SEC_SCALARS: u8 = 1;
const SEC_AUDIT: u8 = 2;
const SEC_TIMELINES: u8 = 3;
const SEC_CACHES: u8 = 4;
const SEC_POLICY: u8 = 5;
const SEC_TRACE_HWM: u8 = 6;

/// One epoch's worth of engine-state change: everything needed to advance
/// an [`EngineSnapshot`] from the previous epoch boundary to this one.
///
/// Produced by `Engine::wal_delta`, consumed by [`WalDelta::apply`] during
/// a recovery scan. Size is O(changes in the epoch): scalars are O(p), the
/// audit/timeline sections carry only the entries appended since the last
/// record, and the cache section carries only the caches the epoch's
/// events actually touched.
#[derive(Clone, Debug, PartialEq)]
pub struct WalDelta {
    /// Engine ticks at this epoch boundary.
    pub ticks: u64,
    /// Trace-sequence high-water mark (events emitted so far) — what the
    /// supervisor's gated sink dedups against after a resume.
    pub emitted: u64,
    /// Per-processor next-request index.
    pub pos: Vec<usize>,
    /// Per-processor completion times (0 while unfinished).
    pub completions: Vec<Time>,
    /// Per-processor finished flags.
    pub finished: Vec<bool>,
    /// Aggregate hit/miss counters.
    pub stats: CacheStats,
    /// Memory impact accumulated so far.
    pub memory_integral: u128,
    /// Grants issued so far.
    pub grants_issued: u64,
    /// Concurrently-allocated height at the boundary.
    pub live_usage: usize,
    /// Pending releases `(time, height)`, sorted.
    pub releases: Vec<(Time, usize)>,
    /// The enforced memory limit currently in effect.
    pub current_limit: Option<usize>,
    /// Fault-plan delivery position.
    pub fault_pos: usize,
    /// Faults delivered so far.
    pub faults_injected: u64,
    /// Pending events `(time, kind, proc)`, sorted.
    pub heap: Vec<(Time, u8, u32)>,
    /// Processors not yet completion-notified.
    pub remaining: usize,
    /// Length of the base snapshot's audit-delta trace this record extends
    /// (validated by [`WalDelta::apply`] — the stale-base guard).
    pub deltas_base: u64,
    /// Audit-trace entries appended during the epoch.
    pub deltas_suffix: Vec<(Time, i64)>,
    /// Per-processor timeline lengths this record extends (empty when the
    /// run does not record timelines).
    pub timeline_bases: Vec<u64>,
    /// Per-processor timeline entries appended during the epoch (parallel
    /// to `timeline_bases`).
    pub timeline_suffixes: Vec<Vec<Interval>>,
    /// `(processor, Checkpoint blob)` for exactly the caches mutated
    /// during the epoch, in strictly increasing processor order.
    pub cache_updates: Vec<(u32, Vec<u8>)>,
    /// The policy's full checkpoint blob (includes RNG position for the
    /// randomized policies, so the epoch's RNG draws replay exactly).
    pub policy_blob: Vec<u8>,
}

impl WalDelta {
    /// Serializes the delta as a WAL record payload (canonical: equal
    /// deltas encode to equal bytes).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_u8(SEC_SCALARS);
        w.put_u64(self.ticks);
        let p = self.pos.len();
        w.put_len(p);
        for &v in &self.pos {
            w.put_usize(v);
        }
        for &c in &self.completions {
            w.put_u64(c);
        }
        for &f in &self.finished {
            w.put_bool(f);
        }
        w.put_u64(self.stats.hits);
        w.put_u64(self.stats.misses);
        w.put_u128(self.memory_integral);
        w.put_u64(self.grants_issued);
        w.put_usize(self.live_usage);
        w.put_len(self.releases.len());
        for &(t, h) in &self.releases {
            w.put_u64(t);
            w.put_usize(h);
        }
        match self.current_limit {
            Some(l) => {
                w.put_bool(true);
                w.put_usize(l);
            }
            None => w.put_bool(false),
        }
        w.put_usize(self.fault_pos);
        w.put_u64(self.faults_injected);
        w.put_len(self.heap.len());
        for &(t, kind, proc) in &self.heap {
            w.put_u64(t);
            w.put_u8(kind);
            w.put_u32(proc);
        }
        w.put_usize(self.remaining);

        w.put_u8(SEC_AUDIT);
        w.put_u64(self.deltas_base);
        w.put_len(self.deltas_suffix.len());
        for &(t, d) in &self.deltas_suffix {
            w.put_u64(t);
            w.put_i64(d);
        }

        w.put_u8(SEC_TIMELINES);
        w.put_len(self.timeline_bases.len());
        for (base, suffix) in self.timeline_bases.iter().zip(&self.timeline_suffixes) {
            w.put_u64(*base);
            w.put_len(suffix.len());
            for iv in suffix {
                w.put_u64(iv.start);
                w.put_u64(iv.end);
                w.put_usize(iv.height);
            }
        }

        w.put_u8(SEC_CACHES);
        w.put_len(self.cache_updates.len());
        for (proc, blob) in &self.cache_updates {
            w.put_u32(*proc);
            w.put_bytes(blob);
        }

        w.put_u8(SEC_POLICY);
        w.put_bytes(&self.policy_blob);

        w.put_u8(SEC_TRACE_HWM);
        w.put_u64(self.emitted);
        w.into_bytes()
    }

    /// Parses a WAL record payload.
    ///
    /// # Errors
    /// A typed [`CodecError`] on any truncated, reordered, or structurally
    /// invalid payload — never a panic.
    pub fn decode(payload: &[u8]) -> Result<Self, CodecError> {
        let mut r = SnapReader::new(payload);
        let tag = |r: &mut SnapReader<'_>, want: u8| -> Result<(), CodecError> {
            if r.get_u8()? != want {
                return Err(CodecError::Invalid("wal section tag out of order"));
            }
            Ok(())
        };
        tag(&mut r, SEC_SCALARS)?;
        let ticks = r.get_u64()?;
        let p = r.get_len()?;
        let mut pos = Vec::with_capacity(p);
        for _ in 0..p {
            pos.push(r.get_usize()?);
        }
        let mut completions = Vec::with_capacity(p);
        for _ in 0..p {
            completions.push(r.get_u64()?);
        }
        let mut finished = Vec::with_capacity(p);
        for _ in 0..p {
            finished.push(r.get_bool()?);
        }
        let stats = CacheStats {
            hits: r.get_u64()?,
            misses: r.get_u64()?,
        };
        let memory_integral = r.get_u128()?;
        let grants_issued = r.get_u64()?;
        let live_usage = r.get_usize()?;
        let n_rel = r.get_len()?;
        let mut releases = Vec::with_capacity(n_rel);
        for _ in 0..n_rel {
            let t = r.get_u64()?;
            let h = r.get_usize()?;
            releases.push((t, h));
        }
        let current_limit = if r.get_bool()? {
            Some(r.get_usize()?)
        } else {
            None
        };
        let fault_pos = r.get_usize()?;
        let faults_injected = r.get_u64()?;
        let n_heap = r.get_len()?;
        let mut heap = Vec::with_capacity(n_heap);
        for _ in 0..n_heap {
            let t = r.get_u64()?;
            let kind = r.get_u8()?;
            if kind > 1 {
                return Err(CodecError::Invalid("unknown event kind in wal record"));
            }
            let proc = r.get_u32()?;
            heap.push((t, kind, proc));
        }
        let remaining = r.get_usize()?;

        tag(&mut r, SEC_AUDIT)?;
        let deltas_base = r.get_u64()?;
        let n_suffix = r.get_len()?;
        let mut deltas_suffix = Vec::with_capacity(n_suffix);
        for _ in 0..n_suffix {
            let t = r.get_u64()?;
            let d = r.get_i64()?;
            deltas_suffix.push((t, d));
        }

        tag(&mut r, SEC_TIMELINES)?;
        let n_tl = r.get_len()?;
        if n_tl != 0 && n_tl != p {
            return Err(CodecError::Invalid("wal timeline count"));
        }
        let mut timeline_bases = Vec::with_capacity(n_tl);
        let mut timeline_suffixes = Vec::with_capacity(n_tl);
        for _ in 0..n_tl {
            timeline_bases.push(r.get_u64()?);
            let n = r.get_len()?;
            let mut suffix = Vec::with_capacity(n);
            for _ in 0..n {
                let start = r.get_u64()?;
                let end = r.get_u64()?;
                let height = r.get_usize()?;
                suffix.push(Interval { start, end, height });
            }
            timeline_suffixes.push(suffix);
        }

        tag(&mut r, SEC_CACHES)?;
        let n_caches = r.get_len()?;
        let mut cache_updates: Vec<(u32, Vec<u8>)> = Vec::with_capacity(n_caches);
        for _ in 0..n_caches {
            let proc = r.get_u32()?;
            if let Some(&(last, _)) = cache_updates.last() {
                if proc <= last {
                    return Err(CodecError::Invalid("wal cache updates out of order"));
                }
            }
            cache_updates.push((proc, r.get_bytes()?.to_vec()));
        }

        tag(&mut r, SEC_POLICY)?;
        let policy_blob = r.get_bytes()?.to_vec();

        tag(&mut r, SEC_TRACE_HWM)?;
        let emitted = r.get_u64()?;
        if !r.is_exhausted() {
            return Err(CodecError::Invalid("trailing bytes after wal record"));
        }
        Ok(WalDelta {
            ticks,
            emitted,
            pos,
            completions,
            finished,
            stats,
            memory_integral,
            grants_issued,
            live_usage,
            releases,
            current_limit,
            fault_pos,
            faults_injected,
            heap,
            remaining,
            deltas_base,
            deltas_suffix,
            timeline_bases,
            timeline_suffixes,
            cache_updates,
            policy_blob,
        })
    }

    /// Folds this delta into `snap`, advancing it to this record's epoch
    /// boundary.
    ///
    /// # Errors
    /// A typed [`CodecError::Invalid`] when the record does not extend
    /// `snap` — wrong processor count, regressing counters, or suffix base
    /// lengths that disagree with the snapshot (the stale-base/newer-log
    /// guard, defense in depth behind the digest chain).
    pub fn apply(&self, snap: &mut EngineSnapshot) -> Result<(), CodecError> {
        let p = snap.pos.len();
        if self.pos.len() != p || self.completions.len() != p || self.finished.len() != p {
            return Err(CodecError::Invalid("wal record processor count"));
        }
        if self.ticks < snap.ticks || self.emitted < snap.emitted {
            return Err(CodecError::Invalid("wal record regresses the run"));
        }
        if self.deltas_base != snap.deltas.len() as u64 {
            return Err(CodecError::Invalid(
                "wal record does not extend this base (audit trace length)",
            ));
        }
        if self.timeline_bases.is_empty() != snap.timelines.is_empty() {
            return Err(CodecError::Invalid("wal record timeline recording mode"));
        }
        for (x, base) in self.timeline_bases.iter().enumerate() {
            if *base != snap.timelines[x].len() as u64 {
                return Err(CodecError::Invalid(
                    "wal record does not extend this base (timeline length)",
                ));
            }
        }
        for &(proc, _) in &self.cache_updates {
            if proc as usize >= p {
                return Err(CodecError::Invalid("wal cache update processor"));
            }
        }

        snap.ticks = self.ticks;
        snap.emitted = self.emitted;
        snap.pos = self.pos.clone();
        snap.completions = self.completions.clone();
        snap.finished = self.finished.clone();
        snap.stats = self.stats;
        snap.memory_integral = self.memory_integral;
        snap.grants_issued = self.grants_issued;
        snap.live_usage = self.live_usage;
        snap.releases = self.releases.clone();
        snap.current_limit = self.current_limit;
        snap.fault_pos = self.fault_pos;
        snap.faults_injected = self.faults_injected;
        snap.heap = self.heap.clone();
        snap.remaining = self.remaining;
        snap.deltas.extend_from_slice(&self.deltas_suffix);
        for (x, suffix) in self.timeline_suffixes.iter().enumerate() {
            snap.timelines[x].extend_from_slice(suffix);
        }
        for (proc, blob) in &self.cache_updates {
            snap.cache_blobs[*proc as usize] = blob.clone();
        }
        snap.policy_blob = self.policy_blob.clone();
        Ok(())
    }
}

/// Append-side chain cursor: tracks the next sequence number and chain
/// seed while records are written after a base snapshot.
#[derive(Clone, Copy, Debug)]
pub struct WalCursor {
    /// Sequence number the next appended record will carry.
    pub seq: u64,
    /// Chain seed the next appended record's digest starts from.
    pub chain: u64,
}

impl WalCursor {
    /// The cursor immediately after installing `base` (the encoded full
    /// snapshot): sequence 0, chain seeded by the base digest.
    pub fn at_base(base: &[u8]) -> Self {
        WalCursor {
            seq: 0,
            chain: fnv1a64(base),
        }
    }

    /// Frames `payload` as the next record and advances the cursor.
    pub fn frame(&mut self, payload: &[u8]) -> Vec<u8> {
        let (bytes, digest) = frame_wal_record(self.seq, self.chain, payload);
        self.seq += 1;
        self.chain = digest;
        bytes
    }
}

/// Where and why a recovery scan stopped short of the log's end.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalTruncation {
    /// Sequence number the unusable record would have carried.
    pub at_seq: u64,
    /// Byte offset into the log at which the scan stopped.
    pub offset: usize,
    /// The typed reason (torn frame, digest/chain break, bad payload).
    pub reason: CodecError,
}

impl std::fmt::Display for WalTruncation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "wal truncated at record {} (byte {}): {}",
            self.at_seq, self.offset, self.reason
        )
    }
}

/// The outcome of a recovery scan: the reconstructed snapshot and how much
/// of the log survived.
#[derive(Clone, Debug, PartialEq)]
pub struct WalRecovery {
    /// Base snapshot advanced by every intact record — byte-identical to
    /// the full snapshot at that epoch boundary.
    pub snapshot: EngineSnapshot,
    /// Records applied before the log ended (cleanly or at a tear).
    pub records_applied: u64,
    /// `Some` when the scan stopped at a torn or corrupt record; the
    /// snapshot then reflects the last intact record before it.
    pub truncation: Option<WalTruncation>,
}

/// Replays `(base, log)`: decodes the base snapshot, then applies records
/// until the log ends or breaks. Tolerates torn writes, partial tails,
/// mid-record truncation, flipped bytes, reordered or gapped sequences,
/// and a log written after a different base — each is a typed truncation,
/// never a panic, and the scan recovers everything before the tear.
///
/// # Errors
/// [`SnapshotError`] only when the *base* itself fails to decode; the
/// caller decides whether that means restart-from-scratch.
pub fn recover(base: &[u8], log: &[u8]) -> Result<WalRecovery, SnapshotError> {
    let mut snapshot = EngineSnapshot::decode(base)?;
    let mut chain = fnv1a64(base);
    let mut offset = 0usize;
    let mut next_seq = 0u64;
    let mut truncation = None;
    while truncation.is_none() {
        match parse_wal_record(&log[offset..], chain) {
            WalRecordStep::End => break,
            WalRecordStep::Torn(reason) => {
                truncation = Some(WalTruncation {
                    at_seq: next_seq,
                    offset,
                    reason,
                });
            }
            WalRecordStep::Record {
                seq,
                payload,
                digest,
                consumed,
            } => {
                if seq != next_seq {
                    truncation = Some(WalTruncation {
                        at_seq: next_seq,
                        offset,
                        reason: CodecError::Invalid("wal sequence gap"),
                    });
                    continue;
                }
                let delta = match WalDelta::decode(payload) {
                    Ok(d) => d,
                    Err(reason) => {
                        truncation = Some(WalTruncation {
                            at_seq: next_seq,
                            offset,
                            reason,
                        });
                        continue;
                    }
                };
                if let Err(reason) = delta.apply(&mut snapshot) {
                    truncation = Some(WalTruncation {
                        at_seq: next_seq,
                        offset,
                        reason,
                    });
                    continue;
                }
                chain = digest;
                offset += consumed;
                next_seq += 1;
            }
        }
    }
    Ok(WalRecovery {
        snapshot,
        records_applied: next_seq,
        truncation,
    })
}

/// Where the supervisor keeps its checkpoints: one base snapshot plus the
/// delta log appended after it.
///
/// The default [`MemStore`] holds both in memory. The trait exists so the
/// chaos harness can interpose a store that corrupts what recovery reads —
/// torn writes, partial tails, stale bases — and so a future server can
/// persist checkpoints without touching the supervisor.
pub trait CheckpointStore {
    /// Replaces the base snapshot with `snapshot` (encoded) and clears the
    /// log: subsequent records extend the new base.
    fn install_base(&mut self, snapshot: Vec<u8>);

    /// Appends one framed WAL record after the current base.
    fn append_record(&mut self, record: Vec<u8>);

    /// The `(base, log)` pair recovery reads, or `None` before the first
    /// [`CheckpointStore::install_base`]. Takes `&mut self` so corrupting
    /// test stores can materialize their sabotage lazily.
    fn view(&mut self) -> Option<(&[u8], &[u8])>;
}

/// The default in-memory checkpoint store.
#[derive(Clone, Debug, Default)]
pub struct MemStore {
    base: Option<Vec<u8>>,
    log: Vec<u8>,
}

impl MemStore {
    /// An empty store (no checkpoint yet).
    pub fn new() -> Self {
        MemStore::default()
    }

    /// Bytes currently held in the delta log.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }
}

impl CheckpointStore for MemStore {
    fn install_base(&mut self, snapshot: Vec<u8>) {
        self.base = Some(snapshot);
        self.log.clear();
    }

    fn append_record(&mut self, record: Vec<u8>) {
        self.log.extend_from_slice(&record);
    }

    fn view(&mut self) -> Option<(&[u8], &[u8])> {
        self.base.as_deref().map(|b| (b, self.log.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_snapshot() -> EngineSnapshot {
        EngineSnapshot {
            ticks: 10,
            emitted: 20,
            workload_digest: 0xfeed,
            pos: vec![3, 5],
            completions: vec![0, 0],
            finished: vec![false, false],
            stats: CacheStats { hits: 7, misses: 3 },
            memory_integral: 100,
            grants_issued: 4,
            timelines: Vec::new(),
            deltas: vec![(0, 4), (8, -4)],
            live_usage: 4,
            releases: vec![(12, 4)],
            current_limit: None,
            fault_pos: 0,
            faults_injected: 0,
            heap: vec![(12, 1, 0), (14, 1, 1)],
            remaining: 2,
            cache_blobs: vec![vec![1], vec![2]],
            policy_blob: vec![9],
        }
    }

    fn delta_after(base: &EngineSnapshot) -> WalDelta {
        WalDelta {
            ticks: base.ticks + 6,
            emitted: base.emitted + 12,
            pos: vec![5, 8],
            completions: vec![0, 30],
            finished: vec![false, true],
            stats: CacheStats {
                hits: 11,
                misses: 5,
            },
            memory_integral: 180,
            grants_issued: 7,
            live_usage: 2,
            releases: vec![(20, 2)],
            current_limit: Some(8),
            fault_pos: 1,
            faults_injected: 1,
            heap: vec![(20, 1, 0)],
            remaining: 1,
            deltas_base: base.deltas.len() as u64,
            deltas_suffix: vec![(12, 2), (20, -2)],
            timeline_bases: Vec::new(),
            timeline_suffixes: Vec::new(),
            cache_updates: vec![(1, vec![42, 43])],
            policy_blob: vec![8, 7],
        }
    }

    #[test]
    fn delta_payload_round_trips() {
        let base = base_snapshot();
        let delta = delta_after(&base);
        let decoded = WalDelta::decode(&delta.encode()).unwrap();
        assert_eq!(decoded, delta);
    }

    #[test]
    fn apply_advances_the_base() {
        let mut snap = base_snapshot();
        let delta = delta_after(&snap);
        delta.apply(&mut snap).unwrap();
        assert_eq!(snap.ticks, 16);
        assert_eq!(snap.emitted, 32);
        assert_eq!(snap.deltas, vec![(0, 4), (8, -4), (12, 2), (20, -2)]);
        assert_eq!(snap.cache_blobs, vec![vec![1], vec![42, 43]]);
        assert_eq!(snap.policy_blob, vec![8, 7]);
    }

    #[test]
    fn apply_rejects_a_mismatched_base() {
        let base = base_snapshot();
        let mut wrong = base.clone();
        wrong.deltas.push((9, 1)); // audit trace longer than the record expects
        let delta = delta_after(&base);
        assert!(matches!(
            delta.apply(&mut wrong.clone()),
            Err(CodecError::Invalid(_))
        ));
        let mut fewer_procs = base.clone();
        fewer_procs.pos.pop();
        fewer_procs.completions.pop();
        fewer_procs.finished.pop();
        fewer_procs.cache_blobs.pop();
        assert!(matches!(
            delta.apply(&mut fewer_procs),
            Err(CodecError::Invalid("wal record processor count"))
        ));
    }

    fn sample_log(base: &EngineSnapshot) -> (Vec<u8>, Vec<u8>, Vec<WalDelta>) {
        let base_bytes = base.encode();
        let mut cursor = WalCursor::at_base(&base_bytes);
        let mut log = Vec::new();
        let mut deltas = Vec::new();
        let mut snap = base.clone();
        for _ in 0..3 {
            let d = delta_after(&snap);
            log.extend_from_slice(&cursor.frame(&d.encode()));
            d.apply(&mut snap).unwrap();
            deltas.push(d);
        }
        (base_bytes, log, deltas)
    }

    #[test]
    fn recovery_replays_the_whole_log() {
        let base = base_snapshot();
        let (base_bytes, log, deltas) = sample_log(&base);
        let rec = recover(&base_bytes, &log).unwrap();
        assert_eq!(rec.records_applied, 3);
        assert!(rec.truncation.is_none());
        let mut want = base.clone();
        for d in &deltas {
            d.apply(&mut want).unwrap();
        }
        assert_eq!(rec.snapshot, want);
        // The reconstruction is byte-identical, not just structurally equal.
        assert_eq!(rec.snapshot.encode(), want.encode());
    }

    #[test]
    fn recovery_truncates_at_a_torn_tail() {
        let base = base_snapshot();
        let (base_bytes, log, deltas) = sample_log(&base);
        // Tear the last record mid-payload: the scan must keep records 0–1.
        let torn = &log[..log.len() - 11];
        let rec = recover(&base_bytes, torn).unwrap();
        assert_eq!(rec.records_applied, 2);
        let t = rec.truncation.expect("tear detected");
        assert_eq!(t.at_seq, 2);
        assert_eq!(t.reason, CodecError::UnexpectedEof);
        let mut want = base.clone();
        deltas[0].apply(&mut want).unwrap();
        deltas[1].apply(&mut want).unwrap();
        assert_eq!(rec.snapshot, want);
    }

    #[test]
    fn recovery_truncates_at_a_flipped_byte_and_keeps_nothing_after() {
        let base = base_snapshot();
        let (base_bytes, log, deltas) = sample_log(&base);
        // Flip one byte inside record 1: record 1 *and* the chain-valid
        // record 2 behind it must both be discarded.
        let rec0_len = {
            match parse_wal_record(&log, fnv1a64(&base_bytes)) {
                WalRecordStep::Record { consumed, .. } => consumed,
                other => panic!("expected record, got {other:?}"),
            }
        };
        let mut bad = log.clone();
        bad[rec0_len + 20] ^= 0x01;
        let rec = recover(&base_bytes, &bad).unwrap();
        assert_eq!(rec.records_applied, 1);
        let t = rec.truncation.expect("corruption detected");
        assert_eq!(t.at_seq, 1);
        assert!(matches!(t.reason, CodecError::DigestMismatch { .. }));
        let mut want = base.clone();
        deltas[0].apply(&mut want).unwrap();
        assert_eq!(rec.snapshot, want);
    }

    #[test]
    fn recovery_rejects_a_stale_base_for_a_newer_log() {
        let base = base_snapshot();
        let (_, log, _) = sample_log(&base);
        // A different (older) base: the chain seed differs, so not one
        // record of the newer log may apply.
        let mut stale = base.clone();
        stale.ticks = 1;
        stale.workload_digest = 0xfeed;
        let stale_bytes = stale.encode();
        let rec = recover(&stale_bytes, &log).unwrap();
        assert_eq!(rec.records_applied, 0);
        assert!(matches!(
            rec.truncation.expect("chain mismatch").reason,
            CodecError::DigestMismatch { .. }
        ));
        assert_eq!(rec.snapshot, stale);
    }

    #[test]
    fn recovery_rejects_a_reordered_log() {
        let base = base_snapshot();
        let (base_bytes, log, _) = sample_log(&base);
        let rec0_len = match parse_wal_record(&log, fnv1a64(&base_bytes)) {
            WalRecordStep::Record { consumed, .. } => consumed,
            other => panic!("expected record, got {other:?}"),
        };
        // Drop record 0: record 1 arrives first, seeded wrong → chain break.
        let rec = recover(&base_bytes, &log[rec0_len..]).unwrap();
        assert_eq!(rec.records_applied, 0);
        assert!(rec.truncation.is_some());
    }

    #[test]
    fn corrupt_base_is_a_typed_error() {
        let base = base_snapshot();
        let (mut base_bytes, log, _) = sample_log(&base);
        let mid = base_bytes.len() / 2;
        base_bytes[mid] ^= 0x20;
        assert!(matches!(
            recover(&base_bytes, &log),
            Err(SnapshotError::Codec(_))
        ));
    }

    #[test]
    fn mem_store_clears_log_on_new_base() {
        let mut store = MemStore::new();
        assert!(store.view().is_none());
        store.install_base(vec![1, 2, 3]);
        store.append_record(vec![4, 5]);
        assert_eq!(store.view(), Some((&[1u8, 2, 3][..], &[4u8, 5][..])));
        assert_eq!(store.log_len(), 2);
        store.install_base(vec![9]);
        assert_eq!(store.view(), Some((&[9u8][..], &[][..])));
    }
}
