//! Typed abnormal-condition reporting for the execution engine.
//!
//! The engine used to `panic!` on a misbehaving policy or a pathological
//! model instance, killing the whole process. Every abnormal condition is
//! now a variant of [`EngineError`], so callers (experiment harnesses, the
//! CLI fault matrix, batch sweeps) can observe a failed run, report it, and
//! carry on with the next configuration.

use std::fmt;

use parapage_cache::Time;

/// Why an engine run was aborted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The policy emitted a grant with `duration == 0`. A zero-duration
    /// grant would re-enqueue the same grant request at the same timestamp
    /// forever, so the engine refuses it outright.
    ZeroDurationGrant {
        /// Name of the offending policy.
        policy: &'static str,
        /// Time of the offending grant request.
        at: Time,
    },
    /// Concurrently allocated height exceeded the enforced memory limit
    /// (from [`crate::EngineOpts::memory_limit`] or a
    /// [`parapage_core::FaultEvent::MemoryPressure`] event).
    MemoryLimitExceeded {
        /// Time of the grant that crossed the limit.
        at: Time,
        /// Concurrently allocated height after the offending grant.
        allocated: usize,
        /// The enforced limit, in pages.
        limit: usize,
    },
    /// Simulated time passed [`crate::EngineOpts::max_time`] with work
    /// still pending — the signature of a policy stalling forever.
    TimeCapExceeded {
        /// The first event time observed past the cap.
        at: Time,
        /// The configured cap.
        cap: Time,
    },
    /// Event-time arithmetic overflowed `u64` — a pathological miss
    /// penalty, latency-spike factor, or grant duration would have wrapped
    /// silently.
    TimeOverflow {
        /// The last valid time before the overflowing addition.
        at: Time,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EngineError::ZeroDurationGrant { policy, at } => {
                write!(f, "zero-duration grant from policy `{policy}` at t={at}")
            }
            EngineError::MemoryLimitExceeded {
                at,
                allocated,
                limit,
            } => write!(
                f,
                "memory limit exceeded at t={at}: {allocated} pages allocated, limit {limit}"
            ),
            EngineError::TimeCapExceeded { at, cap } => {
                write!(
                    f,
                    "simulated time {at} exceeded max_time={cap} (policy stalled?)"
                )
            }
            EngineError::TimeOverflow { at } => {
                write!(f, "event-time arithmetic overflowed u64 past t={at}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod error_path_tests {
    //! Every [`EngineError`] variant, produced by a *real engine run* and
    //! asserted as a typed value — not just constructed by hand. These
    //! pin the exact payload (policy name, time, limit) each abnormal
    //! condition carries, so downstream harnesses can match on it.

    use super::*;
    use crate::engine::{run_engine, run_engine_faults, EngineOpts};
    use crate::fault::FaultPlan;
    use parapage_cache::{PageId, ProcId};
    use parapage_core::{BoxAllocator, FaultEvent, Grant, ModelParams, StaticPartition};

    fn seqs(p: usize, len: usize, width: u64) -> Vec<Vec<PageId>> {
        (0..p)
            .map(|x| {
                (0..len)
                    .map(|i| PageId::namespaced(ProcId(x as u32), i as u64 % width))
                    .collect()
            })
            .collect()
    }

    /// A policy that always answers with one fixed grant.
    struct Fixed {
        height: usize,
        duration: u64,
    }
    impl BoxAllocator for Fixed {
        fn grant(&mut self, _x: ProcId, _now: Time) -> Grant {
            Grant {
                height: self.height,
                duration: self.duration,
            }
        }
        fn on_proc_finished(&mut self, _x: ProcId, _now: Time) {}
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    #[test]
    fn zero_duration_grant_carries_policy_name_and_time() {
        let params = ModelParams::new(1, 4, 10);
        let err = run_engine(
            &mut Fixed {
                height: 2,
                duration: 0,
            },
            &seqs(1, 5, 4),
            &params,
            &EngineOpts::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            EngineError::ZeroDurationGrant {
                policy: "fixed",
                at: 0
            }
        );
    }

    #[test]
    fn memory_limit_error_reports_overshoot_and_limit() {
        // StaticPartition allocates k/p = 8 per processor; a limit of 12
        // admits the first grant (8 <= 12) and rejects the second
        // (16 > 12), all at t=0.
        let params = ModelParams::new(2, 16, 10);
        let opts = EngineOpts {
            memory_limit: Some(12),
            ..Default::default()
        };
        let err = run_engine(
            &mut StaticPartition::new(&params),
            &seqs(2, 20, 4),
            &params,
            &opts,
        )
        .unwrap_err();
        assert_eq!(
            err,
            EngineError::MemoryLimitExceeded {
                at: 0,
                allocated: 16,
                limit: 12
            }
        );
    }

    #[test]
    fn memory_limit_error_reports_the_faulted_limit() {
        // No static limit: the MemoryPressure event activates enforcement
        // mid-run, and the error carries the *tightened* limit.
        let params = ModelParams::new(2, 16, 10);
        let plan = FaultPlan::new(vec![FaultEvent::MemoryPressure {
            at: 1,
            new_limit: 4,
        }]);
        let err = run_engine_faults(
            &mut StaticPartition::new(&params),
            &seqs(2, 400, 12),
            &params,
            &EngineOpts::default(),
            &plan,
        )
        .unwrap_err();
        match err {
            EngineError::MemoryLimitExceeded {
                at,
                allocated,
                limit,
            } => {
                assert_eq!(limit, 4);
                assert!(at >= 1, "enforcement cannot precede the fault");
                assert!(allocated > 4);
            }
            other => panic!("expected MemoryLimitExceeded, got {other:?}"),
        }
    }

    #[test]
    fn time_cap_error_reports_cap_and_crossing_time() {
        // A real policy making real progress, against a cap shorter than
        // the workload: the run dies at the first grant request past it.
        let params = ModelParams::new(1, 4, 10);
        let opts = EngineOpts {
            max_time: 50,
            ..Default::default()
        };
        let err = run_engine(
            &mut StaticPartition::new(&params),
            &seqs(1, 1000, 16),
            &params,
            &opts,
        )
        .unwrap_err();
        match err {
            EngineError::TimeCapExceeded { at, cap } => {
                assert_eq!(cap, 50);
                assert!(at > 50);
            }
            other => panic!("expected TimeCapExceeded, got {other:?}"),
        }
    }

    #[test]
    fn time_overflow_error_reports_last_valid_time() {
        // A short first grant advances the clock to t=10; the second
        // grant's end time `10 + u64::MAX` would wrap. The cap is lifted
        // so the overflow check (not the time cap) is what fires.
        struct Escalating(bool);
        impl BoxAllocator for Escalating {
            fn grant(&mut self, _x: ProcId, _now: Time) -> Grant {
                let duration = if self.0 { u64::MAX } else { 10 };
                self.0 = true;
                Grant {
                    height: 1,
                    duration,
                }
            }
            fn on_proc_finished(&mut self, _x: ProcId, _now: Time) {}
            fn name(&self) -> &'static str {
                "escalating"
            }
        }
        let params = ModelParams::new(1, 4, 10);
        let opts = EngineOpts {
            max_time: u64::MAX,
            ..Default::default()
        };
        let err = run_engine(&mut Escalating(false), &seqs(1, 50, 4), &params, &opts).unwrap_err();
        assert_eq!(err, EngineError::TimeOverflow { at: 10 });
    }

    #[test]
    fn errors_are_data_not_fatal() {
        // The contract the typed errors exist for: a sweep observes a
        // failed configuration and carries on. Same workload, three
        // configurations, only the middle one fails.
        let params = ModelParams::new(2, 16, 10);
        let w = seqs(2, 50, 4);
        let outcomes: Vec<Result<_, EngineError>> = [None, Some(6), None]
            .into_iter()
            .map(|limit| {
                let opts = EngineOpts {
                    memory_limit: limit,
                    ..Default::default()
                };
                run_engine(&mut StaticPartition::new(&params), &w, &params, &opts)
            })
            .collect();
        assert!(outcomes[0].is_ok());
        assert!(matches!(
            outcomes[1],
            Err(EngineError::MemoryLimitExceeded { .. })
        ));
        assert!(outcomes[2].is_ok());
    }

    #[test]
    fn engine_error_works_as_a_boxed_error() {
        // EngineError implements std::error::Error, so it flows through
        // `?` in harnesses using Box<dyn Error>.
        let params = ModelParams::new(1, 4, 10);
        let run = || -> Result<u64, Box<dyn std::error::Error>> {
            let res = run_engine(
                &mut Fixed {
                    height: 2,
                    duration: 0,
                },
                &seqs(1, 5, 4),
                &params,
                &EngineOpts::default(),
            )?;
            Ok(res.makespan)
        };
        let err = run().unwrap_err();
        let engine_err = err.downcast_ref::<EngineError>().expect("downcasts back");
        assert!(matches!(engine_err, EngineError::ZeroDurationGrant { .. }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(EngineError, &str)> = vec![
            (
                EngineError::ZeroDurationGrant {
                    policy: "bad",
                    at: 7,
                },
                "zero-duration",
            ),
            (
                EngineError::MemoryLimitExceeded {
                    at: 3,
                    allocated: 40,
                    limit: 32,
                },
                "limit 32",
            ),
            (
                EngineError::TimeCapExceeded { at: 11, cap: 10 },
                "max_time=10",
            ),
            (EngineError::TimeOverflow { at: 9 }, "overflow"),
        ];
        for (e, needle) in cases {
            let s = e.to_string();
            assert!(s.contains(needle), "`{s}` missing `{needle}`");
        }
    }
}
