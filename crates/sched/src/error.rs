//! Typed abnormal-condition reporting for the execution engine.
//!
//! The engine used to `panic!` on a misbehaving policy or a pathological
//! model instance, killing the whole process. Every abnormal condition is
//! now a variant of [`EngineError`], so callers (experiment harnesses, the
//! CLI fault matrix, batch sweeps) can observe a failed run, report it, and
//! carry on with the next configuration.

use std::fmt;

use parapage_cache::Time;

/// Why an engine run was aborted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The policy emitted a grant with `duration == 0`. A zero-duration
    /// grant would re-enqueue the same grant request at the same timestamp
    /// forever, so the engine refuses it outright.
    ZeroDurationGrant {
        /// Name of the offending policy.
        policy: &'static str,
        /// Time of the offending grant request.
        at: Time,
    },
    /// Concurrently allocated height exceeded the enforced memory limit
    /// (from [`crate::EngineOpts::memory_limit`] or a
    /// [`parapage_core::FaultEvent::MemoryPressure`] event).
    MemoryLimitExceeded {
        /// Time of the grant that crossed the limit.
        at: Time,
        /// Concurrently allocated height after the offending grant.
        allocated: usize,
        /// The enforced limit, in pages.
        limit: usize,
    },
    /// Simulated time passed [`crate::EngineOpts::max_time`] with work
    /// still pending — the signature of a policy stalling forever.
    TimeCapExceeded {
        /// The first event time observed past the cap.
        at: Time,
        /// The configured cap.
        cap: Time,
    },
    /// Event-time arithmetic overflowed `u64` — a pathological miss
    /// penalty, latency-spike factor, or grant duration would have wrapped
    /// silently.
    TimeOverflow {
        /// The last valid time before the overflowing addition.
        at: Time,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EngineError::ZeroDurationGrant { policy, at } => {
                write!(f, "zero-duration grant from policy `{policy}` at t={at}")
            }
            EngineError::MemoryLimitExceeded {
                at,
                allocated,
                limit,
            } => write!(
                f,
                "memory limit exceeded at t={at}: {allocated} pages allocated, limit {limit}"
            ),
            EngineError::TimeCapExceeded { at, cap } => {
                write!(
                    f,
                    "simulated time {at} exceeded max_time={cap} (policy stalled?)"
                )
            }
            EngineError::TimeOverflow { at } => {
                write!(f, "event-time arithmetic overflowed u64 past t={at}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(EngineError, &str)> = vec![
            (
                EngineError::ZeroDurationGrant {
                    policy: "bad",
                    at: 7,
                },
                "zero-duration",
            ),
            (
                EngineError::MemoryLimitExceeded {
                    at: 3,
                    allocated: 40,
                    limit: 32,
                },
                "limit 32",
            ),
            (
                EngineError::TimeCapExceeded { at: 11, cap: 10 },
                "max_time=10",
            ),
            (EngineError::TimeOverflow { at: 9 }, "overflow"),
        ];
        for (e, needle) in cases {
            let s = e.to_string();
            assert!(s.contains(needle), "`{s}` missing `{needle}`");
        }
    }
}
