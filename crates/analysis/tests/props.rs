//! Property tests for the analysis crate: bounds really bound, optima
//! really are optimal (vs brute force on small instances), reporting is
//! total.

use proptest::prelude::*;

use parapage_analysis::{
    fit_linear, micro_opt_makespan, per_proc_bound, quantile, static_opt_makespan,
    static_opt_total_time, summarize, to_csv,
};
use parapage_cache::{miss_curve, PageId, ProcId};

fn cyc(x: u32, width: u64, len: usize) -> Vec<PageId> {
    (0..len)
        .map(|i| PageId::namespaced(ProcId(x), i as u64 % width))
        .collect()
}

fn instance_strategy() -> impl Strategy<Value = Vec<Vec<PageId>>> {
    prop::collection::vec((1u64..10, 5usize..60), 2..=2).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(x, (w, n))| cyc(x as u32, w, n))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// static_opt_makespan equals the brute-force optimum over all splits
    /// (p = 2 allows exhaustive verification).
    #[test]
    fn static_opt_matches_brute_force(seqs in instance_strategy(), k in 2usize..10, s in 2u64..8) {
        let opt = static_opt_makespan(&seqs, k, s);
        let c0 = miss_curve(&seqs[0], k);
        let c1 = miss_curve(&seqs[1], k);
        let brute = (0..=k)
            .map(|a| c0.service_time(a, s).max(c1.service_time(k - a, s)))
            .min()
            .unwrap();
        prop_assert_eq!(opt.objective, brute);
    }

    /// Same for the total-time objective.
    #[test]
    fn static_opt_total_matches_brute_force(seqs in instance_strategy(), k in 2usize..10, s in 2u64..8) {
        let opt = static_opt_total_time(&seqs, k, s);
        let c0 = miss_curve(&seqs[0], k);
        let c1 = miss_curve(&seqs[1], k);
        let brute = (0..=k)
            .map(|a| c0.service_time(a, s) + c1.service_time(k - a, s))
            .min()
            .unwrap();
        prop_assert_eq!(opt.objective, brute);
    }

    /// The certified sandwich: per-processor bound ≤ micro-OPT ≤ full
    /// serialization. (Micro-OPT may exceed the *static* optimum: its
    /// rounds start cold, and re-warming accrues every round — proptest
    /// found the counterexample that killed a tighter claim.)
    #[test]
    fn micro_opt_sandwich(seqs in instance_strategy(), s in 2u64..8) {
        let k = 8;
        let lb = per_proc_bound(&seqs, k, s);
        let micro = micro_opt_makespan(&seqs, k, s);
        prop_assert!(micro >= lb, "{micro} < {lb}");
        let total: u64 = seqs.iter().map(|q| q.len() as u64).sum();
        prop_assert!(micro <= s * total + s * k as u64, "{micro} vs serial");
    }

    /// Least-squares fits reproduce exact lines regardless of scale.
    #[test]
    fn fit_recovers_lines(a in -100.0f64..100.0, b in -10.0f64..10.0, n in 3usize..20) {
        let pts: Vec<(f64, f64)> = (0..n).map(|i| (i as f64, a + b * i as f64)).collect();
        let fit = fit_linear(&pts).unwrap();
        prop_assert!((fit.slope - b).abs() < 1e-6);
        prop_assert!((fit.intercept - a).abs() < 1e-6);
    }

    /// Summaries and quantiles agree on basic order statistics.
    #[test]
    fn summary_quantile_consistency(xs in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let s = summarize(&xs);
        prop_assert!((quantile(&xs, 0.0).unwrap() - s.min).abs() < 1e-9);
        prop_assert!((quantile(&xs, 1.0).unwrap() - s.max).abs() < 1e-9);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
    }

    /// CSV output always has exactly rows+1 lines and round-trips commas.
    #[test]
    fn csv_shape(cells in prop::collection::vec("[a-z,\"]{0,8}", 1..6)) {
        let headers: Vec<String> = (0..cells.len()).map(|i| format!("h{i}")).collect();
        let rows = vec![cells.clone()];
        let csv = to_csv(&headers, &rows);
        prop_assert_eq!(csv.lines().count(), 2);
    }
}
