//! # parapage-analysis
//!
//! Competitive-ratio analysis for the parapage experiments:
//!
//! * [`lower_bounds`] — certified and estimated lower bounds on the offline
//!   optimal makespan `T_OPT` (computing `T_OPT` exactly is NP-hard, paper
//!   ref \[19\]); measured competitive ratios are reported against these.
//! * [`opt_schedule`] — the explicit Lemma-8 OPT schedule for Theorem-4
//!   adversarial instances (an upper bound on `T_OPT`, making measured
//!   ratios on those instances conservative).
//! * [`stats`] — summary statistics with confidence intervals.
//! * [`regression`] — least-squares fits (ratio vs `log p` is the shape
//!   every theorem predicts).
//! * [`static_opt`] — the exact optimal *static* partition (polynomial via
//!   Mattson curves): the anchor any dynamic policy must beat to
//!   demonstrate value from reallocating over time.
//! * [`micro_opt`] — the exact optimum over round-synchronized schedules,
//!   for micro instances (a certified upper bound on `T_OPT` there).
//! * [`report`] — aligned ASCII tables and CSV export for the experiment
//!   binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod gantt;
pub mod lower_bounds;
pub mod micro_opt;
pub mod opt_schedule;
pub mod regression;
pub mod report;
pub mod static_opt;
pub mod stats;

pub use chart::{bar_chart, sparkline};
pub use gantt::gantt;
pub use lower_bounds::{impact_bound_estimate, opt_lower_bound, per_proc_bound};
pub use micro_opt::micro_opt_makespan;
pub use opt_schedule::{lemma8_makespan, Lemma8Schedule};
pub use regression::{fit_linear, LinearFit};
pub use report::{to_csv, Table};
pub use static_opt::{static_opt_makespan, static_opt_total_time, StaticPartitionOpt};
pub use stats::{bootstrap_ci_mean, median, quantile, summarize, Summary};
