//! Least-squares line fitting.
//!
//! Every upper-bound theorem in the paper predicts a quantity that grows
//! like `a + b·log₂ p`; the experiment binaries fit measured ratios against
//! `log₂ p` and report the slope and `R²` so the *shape* claim is checked
//! numerically, not by eyeball.

/// A fitted line `y = intercept + slope·x`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Slope `b`.
    pub slope: f64,
    /// Intercept `a`.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 for a perfect fit;
    /// defined as 0 when `y` is constant and the fit is exact).
    pub r2: f64,
}

impl LinearFit {
    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fits `y = a + b·x` by ordinary least squares.
///
/// Returns `None` for fewer than two points or a degenerate (constant) `x`.
pub fn fit_linear(points: &[(f64, f64)]) -> Option<LinearFit> {
    let n = points.len() as f64;
    if points.len() < 2 {
        return None;
    }
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (intercept + slope * p.0)).powi(2))
        .sum();
    let r2 = if ss_tot < 1e-12 {
        if ss_res < 1e-12 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(LinearFit {
        slope,
        intercept,
        r2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let fit = fit_linear(&pts).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-9);
        assert!((fit.intercept - 3.0).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-9);
        assert!((fit.predict(100.0) - 203.0).abs() < 1e-6);
    }

    #[test]
    fn noisy_line_has_lower_r2() {
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let x = i as f64;
                let noise = if i % 2 == 0 { 1.5 } else { -1.5 };
                (x, 1.0 + 0.5 * x + noise)
            })
            .collect();
        let fit = fit_linear(&pts).unwrap();
        assert!(fit.r2 < 1.0);
        assert!((fit.slope - 0.5).abs() < 0.1);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(fit_linear(&[]).is_none());
        assert!(fit_linear(&[(1.0, 2.0)]).is_none());
        assert!(fit_linear(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn constant_y_perfect_fit() {
        let fit = fit_linear(&[(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r2, 1.0);
    }
}
