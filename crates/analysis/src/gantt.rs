//! ASCII Gantt rendering of allocation timelines.
//!
//! Turns the engine's per-processor interval records into a terminal
//! chart: one row per processor, time bucketed into columns, each cell a
//! glyph encoding the allocated height (log-scaled). Used by the examples
//! and handy when debugging a policy's schedule.

use parapage_cache::Time;
use parapage_core::Interval;

/// Height glyphs from stalled (' ') through tiny ('·') to full ('█').
const GLYPHS: [char; 8] = [' ', '·', '▁', '▂', '▄', '▅', '▇', '█'];

/// Renders timelines as an ASCII Gantt chart with `width` columns.
///
/// Each cell shows the height held at the *start* of its time bucket,
/// log-scaled relative to `max_height` (usually `k`). Processors are rows,
/// labelled `P0…`; a final axis line marks the horizon.
pub fn gantt(
    timelines: &[Vec<Interval>],
    horizon: Time,
    max_height: usize,
    width: usize,
) -> String {
    assert!(width >= 2 && max_height >= 1);
    let horizon = horizon.max(1);
    let mut out = String::new();
    for (x, tl) in timelines.iter().enumerate() {
        out.push_str(&format!("P{x:<3}|"));
        for col in 0..width {
            let t = horizon * col as u64 / width as u64;
            let h = tl
                .iter()
                .find(|iv| iv.start <= t && t < iv.end)
                .map(|iv| iv.height)
                .unwrap_or(0);
            out.push(glyph(h, max_height));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "    +{}\n     0{:>width$}\n",
        "-".repeat(width),
        format!("t={horizon}"),
        width = width - 1
    ));
    out
}

fn glyph(height: usize, max_height: usize) -> char {
    if height == 0 {
        return GLYPHS[0];
    }
    // Log scale: k/2^i maps down one glyph per halving.
    let ratio = max_height as f64 / height as f64;
    let level = (7.0 - ratio.log2()).clamp(1.0, 7.0) as usize;
    GLYPHS[level]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(start: Time, end: Time, height: usize) -> Interval {
        Interval { start, end, height }
    }

    #[test]
    fn renders_one_row_per_processor() {
        let tls = vec![vec![iv(0, 50, 8), iv(50, 100, 64)], vec![iv(0, 100, 0)]];
        let s = gantt(&tls, 100, 64, 20);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // 2 rows + axis + label
        assert!(lines[0].starts_with("P0"));
        assert!(lines[1].starts_with("P1"));
        // Stalled processor renders spaces.
        assert!(lines[1][5..].trim().is_empty());
    }

    #[test]
    fn taller_allocations_use_denser_glyphs() {
        let a = glyph(64, 64);
        let b = glyph(8, 64);
        let c = glyph(0, 64);
        assert_eq!(a, '█');
        assert_ne!(a, b);
        assert_eq!(c, ' ');
    }

    #[test]
    fn full_height_marks_every_column() {
        let tls = vec![vec![iv(0, 10, 32)]];
        let s = gantt(&tls, 10, 32, 10);
        assert_eq!(s.lines().next().unwrap().matches('█').count(), 10);
    }
}
