//! Summary statistics for repeated-seed experiment runs.

/// Mean, spread, and 95% confidence interval of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected); 0 for n < 2.
    pub stddev: f64,
    /// Half-width of the normal-approximation 95% CI (`1.96·σ/√n`).
    pub ci95: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

/// The `q`-th quantile (`q ∈ [0,1]`) by linear interpolation between order
/// statistics; `None` for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// The median (50th percentile); `None` for an empty slice.
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Summarizes a sample; returns zeros for an empty slice.
pub fn summarize(xs: &[f64]) -> Summary {
    let n = xs.len();
    if n == 0 {
        return Summary {
            n: 0,
            mean: 0.0,
            stddev: 0.0,
            ci95: 0.0,
            min: 0.0,
            max: 0.0,
        };
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = if n >= 2 {
        xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0)
    } else {
        0.0
    };
    let stddev = var.sqrt();
    Summary {
        n,
        mean,
        stddev,
        ci95: 1.96 * stddev / (n as f64).sqrt(),
        min: xs.iter().copied().fold(f64::INFINITY, f64::min),
        max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_summary() {
        let s = summarize(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.stddev - 1.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!(s.ci95 > 0.0);
    }

    #[test]
    fn singleton_has_zero_spread() {
        let s = summarize(&[5.0]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.mean, 5.0);
    }

    #[test]
    fn empty_is_zeros() {
        let s = summarize(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(median(&xs), Some(2.5));
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(quantile(&xs, 0.25), Some(1.75));
        assert_eq!(median(&[]), None);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_rejects_out_of_range() {
        quantile(&[1.0], 1.5);
    }
}

/// Nonparametric bootstrap confidence interval for the mean: resamples
/// `xs` with replacement `iters` times and returns the
/// `((1−conf)/2, (1+conf)/2)` quantiles of the resampled means.
///
/// Used for the randomized algorithms' ratio estimates, where the
/// normal-approximation CI of [`summarize`] is dubious at small `n`.
/// Deterministic given `seed` (xorshift64*; no external RNG dependency in
/// this crate).
pub fn bootstrap_ci_mean(xs: &[f64], iters: usize, seed: u64, conf: f64) -> Option<(f64, f64)> {
    if xs.is_empty() || !(0.0..1.0).contains(&conf) {
        return None;
    }
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545F4914F6CDD1D)
    };
    let n = xs.len();
    let mut means = Vec::with_capacity(iters);
    for _ in 0..iters {
        let mut acc = 0.0;
        for _ in 0..n {
            acc += xs[(next() % n as u64) as usize];
        }
        means.push(acc / n as f64);
    }
    let lo = quantile(&means, (1.0 - conf) / 2.0)?;
    let hi = quantile(&means, (1.0 + conf) / 2.0)?;
    Some((lo, hi))
}

#[cfg(test)]
mod bootstrap_tests {
    use super::*;

    #[test]
    fn interval_brackets_the_mean() {
        let xs: Vec<f64> = (0..50).map(|i| 10.0 + (i % 7) as f64).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let (lo, hi) = bootstrap_ci_mean(&xs, 500, 42, 0.95).unwrap();
        assert!(lo <= mean && mean <= hi, "({lo}, {hi}) vs {mean}");
        assert!(hi - lo < 2.0, "interval too wide: {}", hi - lo);
    }

    #[test]
    fn deterministic_given_seed() {
        let xs = [1.0, 5.0, 9.0, 2.0, 2.5];
        assert_eq!(
            bootstrap_ci_mean(&xs, 200, 7, 0.9),
            bootstrap_ci_mean(&xs, 200, 7, 0.9)
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert!(bootstrap_ci_mean(&[], 100, 1, 0.95).is_none());
        assert!(bootstrap_ci_mean(&[1.0], 100, 1, 1.5).is_none());
        let (lo, hi) = bootstrap_ci_mean(&[3.0], 100, 1, 0.95).unwrap();
        assert_eq!((lo, hi), (3.0, 3.0));
    }

    #[test]
    fn wider_confidence_gives_wider_interval() {
        let xs: Vec<f64> = (0..30).map(|i| (i * i % 17) as f64).collect();
        let (l1, h1) = bootstrap_ci_mean(&xs, 800, 3, 0.5).unwrap();
        let (l2, h2) = bootstrap_ci_mean(&xs, 800, 3, 0.99).unwrap();
        assert!(h2 - l2 >= h1 - l1);
    }
}
