//! Minimal ASCII charts for experiment output: a horizontal bar chart and a
//! sparkline, so the ratio-vs-`log p` curves are visible directly in a
//! terminal without any plotting dependency.

/// Renders a horizontal bar chart; one row per `(label, value)`, scaled to
/// `width` columns at the maximum value.
pub fn bar_chart(rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().map(|r| r.1).fold(f64::EPSILON, f64::max);
    let label_w = rows.iter().map(|r| r.0.chars().count()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let filled = ((value / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{:>label_w$} | {}{} {:.3}\n",
            label,
            "█".repeat(filled.min(width)),
            " ".repeat(width - filled.min(width)),
            value,
        ));
    }
    out
}

/// Renders a one-line sparkline of the values using eighth-block glyphs.
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::EPSILON);
    values
        .iter()
        .map(|&v| {
            let idx = (((v - lo) / span) * 7.0).round() as usize;
            GLYPHS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_width() {
        let rows = vec![("a".to_string(), 1.0), ("bb".to_string(), 2.0)];
        let s = bar_chart(&rows, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1].matches('█').count(), 10); // max row fills
        assert_eq!(lines[0].matches('█').count(), 5);
        assert!(lines[0].starts_with(" a")); // right-aligned labels
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[2], '█');
    }

    #[test]
    fn sparkline_constant_input() {
        let s = sparkline(&[2.0, 2.0]);
        assert_eq!(s.chars().count(), 2);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(bar_chart(&[], 10), "");
    }
}
