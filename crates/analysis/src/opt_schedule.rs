//! The explicit OPT schedule of Lemma 8 for Theorem-4 adversarial
//! instances.
//!
//! OPT runs each *prefix* alone with the full cache `k` (all other
//! processors stalled — the model permits stalling, and memory is
//! feasible: one processor at `k`, the rest at 0), then runs all *suffixes*
//! in parallel with `k/p ≥ 1` pages each (suffixes are all-fresh, so any
//! cache size gives the same speed). The resulting makespan is a valid
//! schedule's makespan and therefore an **upper bound on `T_OPT`** —
//! competitive ratios computed against it are conservative (they
//! under-state how badly the online algorithms lose).

use parapage_cache::{min_misses, Time};
use parapage_workloads::AdversarialInstance;

/// Breakdown of the Lemma-8 schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lemma8Schedule {
    /// Total time spent running prefixes one at a time at full memory.
    pub prefix_time: Time,
    /// Time of the parallel suffix stage.
    pub suffix_time: Time,
}

impl Lemma8Schedule {
    /// The schedule's makespan (`prefix_time + suffix_time`).
    pub fn makespan(&self) -> Time {
        self.prefix_time + self.suffix_time
    }
}

/// Simulates the Lemma-8 schedule on `inst` and returns its makespan
/// components.
pub fn lemma8_makespan(inst: &AdversarialInstance) -> Lemma8Schedule {
    let cfg = &inst.config;
    let s = cfg.s;
    let phase_len = cfg.phase_len();
    let suffix_len = cfg.suffix_phases * phase_len;

    // Stage 1: prefixes, one at a time, full cache, warm across phases.
    // OPT is offline, so it replaces with Belady's MIN: polluters (never
    // reused) are evicted first and the repeater cycle stays resident — the
    // miss rate is exactly the pollution level plus compulsory misses.
    // (With LRU the same prefix would thrash: each polluter evicts the
    // next-due repeater. That pathology is the adversary's weapon against
    // the *online* algorithms, not against OPT.)
    let mut prefix_time: Time = 0;
    for meta in &inst.prefixed {
        let seq = &inst.workload.seqs()[meta.proc.idx()];
        let prefix_end = meta.phases * phase_len;
        let prefix = &seq[..prefix_end];
        let misses = min_misses(prefix, cfg.k);
        prefix_time += prefix.len() as u64 + (s - 1) * misses;
    }

    // Stage 2: all suffixes in parallel; all-fresh pages miss regardless of
    // cache size, so each suffix takes s per request.
    let suffix_time = suffix_len as u64 * s;

    Lemma8Schedule {
        prefix_time,
        suffix_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapage_workloads::AdversarialConfig;

    fn inst() -> AdversarialInstance {
        AdversarialInstance::build(AdversarialConfig::scaled(16, 64, 10, 0.05))
    }

    #[test]
    fn suffix_time_is_all_miss() {
        let i = inst();
        let sched = lemma8_makespan(&i);
        let suffix_len = i.config.suffix_phases * i.config.phase_len();
        assert_eq!(sched.suffix_time, suffix_len as u64 * 10);
    }

    #[test]
    fn prefix_time_reflects_full_cache_efficiency() {
        // With the full cache, a prefix phase pays the k-1 compulsory misses
        // once plus the polluter misses; the bulk of requests hit.
        let i = inst();
        let sched = lemma8_makespan(&i);
        // Worst case all-miss bound:
        let total_prefix_requests: u64 = i
            .prefixed
            .iter()
            .map(|m| (m.phases * i.config.phase_len()) as u64)
            .sum();
        assert!(
            sched.prefix_time < total_prefix_requests * 10 / 2,
            "prefixes should mostly hit at full memory: {} vs all-miss {}",
            sched.prefix_time,
            total_prefix_requests * 10
        );
        assert!(sched.prefix_time > 0);
    }

    #[test]
    fn makespan_adds_components() {
        let sched = lemma8_makespan(&inst());
        assert_eq!(sched.makespan(), sched.prefix_time + sched.suffix_time);
    }
}
