//! Lower bounds on the offline optimal makespan `T_OPT`.
//!
//! The offline parallel paging problem is NP-hard (paper ref \[19\]), so the
//! experiments report competitive ratios against lower bounds on `T_OPT`;
//! a measured ratio is then an *upper bound* on the true competitive ratio,
//! which is the conservative direction for validating the paper's
//! `O(log p)` claims.
//!
//! Two bounds are combined:
//!
//! 1. **Per-processor bound** (certified): even if OPT gave processor `i`
//!    the entire cache `k` for its whole run, it pays at least
//!    `nᵢ + (s−1)·MIN(Rᵢ, k)` where `MIN` is Belady's offline minimum miss
//!    count. `T_OPT ≥ maxᵢ` of these.
//! 2. **Aggregate impact bound** (estimate): OPT allocates at most `k`
//!    pages at any instant, so `k·T_OPT ≥ Σᵢ Iᵢ` where `Iᵢ` is the memory
//!    impact OPT spends on processor `i`, which is at least processor `i`'s
//!    optimal green-paging impact. We compute the green optimum over
//!    power-of-two compartmentalized boxes (an upper bound on the
//!    unconstrained green optimum) and divide by the WLOG constant
//!    [`IMPACT_NORMALIZATION`] — the paper's §2 normalization arguments
//!    bound the gap by a constant; 4 covers rounding heights to powers of
//!    two (≤2×) and compartmentalization (≤2×). This component is an
//!    estimate, clearly labelled as such in EXPERIMENTS.md.

use parapage_cache::{min_misses, PageId, Time};
use parapage_core::green_opt_fast;

/// Constant dividing the box-restricted green-OPT impact to estimate the
/// unconstrained optimum (see module docs).
pub const IMPACT_NORMALIZATION: f64 = 4.0;

/// Certified bound: `maxᵢ (nᵢ + (s−1)·belady_misses(Rᵢ, k))`.
pub fn per_proc_bound(seqs: &[Vec<PageId>], k: usize, s: u64) -> Time {
    seqs.iter()
        .map(|seq| seq.len() as u64 + (s - 1) * min_misses(seq, k))
        .max()
        .unwrap_or(0)
}

/// Estimated bound: `Σᵢ greenOPT(Rᵢ) / (IMPACT_NORMALIZATION · k)`, with
/// green OPT computed over heights `{1, 2, 4, …, k}`.
pub fn impact_bound_estimate(seqs: &[Vec<PageId>], k: usize, s: u64) -> Time {
    let mut heights = Vec::new();
    let mut h = 1usize;
    while h <= k {
        heights.push(h);
        h *= 2;
    }
    let total: u128 = seqs
        .iter()
        .map(|seq| green_opt_fast(seq, &heights, s).impact)
        .sum();
    ((total as f64) / (IMPACT_NORMALIZATION * k as f64)) as Time
}

/// Combined lower bound: the max of the per-processor bound and the impact
/// estimate.
pub fn opt_lower_bound(seqs: &[Vec<PageId>], k: usize, s: u64) -> Time {
    per_proc_bound(seqs, k, s).max(impact_bound_estimate(seqs, k, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapage_cache::ProcId;

    fn ns(x: u32, v: u64) -> PageId {
        PageId::namespaced(ProcId(x), v)
    }

    #[test]
    fn per_proc_bound_is_longest_sequence_time() {
        // Two procs: cyc(4) fits in k=8 -> only 4 compulsory misses.
        let seqs: Vec<Vec<PageId>> = (0..2)
            .map(|x| (0..100).map(|i| ns(x, i % 4)).collect())
            .collect();
        let b = per_proc_bound(&seqs, 8, 10);
        // 100 requests + 9 extra per compulsory miss * 4.
        assert_eq!(b, 100 + 9 * 4);
    }

    #[test]
    fn per_proc_bound_counts_unavoidable_misses() {
        // Fresh stream of 50: all misses even with full cache.
        let seqs = vec![(0..50).map(|i| ns(0, i)).collect::<Vec<_>>()];
        assert_eq!(per_proc_bound(&seqs, 8, 10), 50 + 9 * 50);
    }

    #[test]
    fn impact_bound_grows_with_processor_count() {
        // Many processors each with substantial work: the aggregate impact
        // bound must eventually exceed the per-processor bound.
        let mk = |p: usize| -> Vec<Vec<PageId>> {
            (0..p as u32)
                .map(|x| (0..200).map(|i| ns(x, i % 16)).collect())
                .collect()
        };
        let k = 32;
        let s = 10;
        let small = impact_bound_estimate(&mk(2), k, s);
        let large = impact_bound_estimate(&mk(16), k, s);
        assert!(large > 4 * small);
    }

    #[test]
    fn combined_bound_takes_the_max() {
        let seqs = vec![(0..50).map(|i| ns(0, i)).collect::<Vec<_>>()];
        let lb = opt_lower_bound(&seqs, 8, 10);
        assert_eq!(
            lb,
            per_proc_bound(&seqs, 8, 10).max(impact_bound_estimate(&seqs, 8, 10))
        );
        assert!(lb >= per_proc_bound(&seqs, 8, 10));
    }

    #[test]
    fn empty_workload_has_zero_bound() {
        assert_eq!(opt_lower_bound(&[], 8, 10), 0);
    }
}
