//! Exact optimal *static* cache partitioning.
//!
//! The parallel paging OPT is NP-hard in general, but restricted to
//! *static* partitions — processor `i` owns `cᵢ` pages for the whole run,
//! `Σcᵢ ≤ k` — the optimum is polynomial, because LRU service time at every
//! capacity comes from one Mattson pass:
//!
//! * **makespan** objective: binary-search the target `T` and check
//!   feasibility with `Σᵢ min{c : timeᵢ(c) ≤ T} ≤ k`;
//! * **total completion time** objective: a knapsack-style DP over
//!   processors × capacity (`O(p·k²)`; marginal utilities need not be
//!   convex, so greedy is not exact).
//!
//! These exact optima anchor the experiments: they dominate the
//! `STATIC-EQUAL` strawman by construction, and any *dynamic* policy that
//! beats them demonstrates genuine value from reallocating over time —
//! which is precisely the paper's subject.

use parapage_cache::{miss_curve, MissCurve, PageId, Time};

/// An exact static-partition solution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaticPartitionOpt {
    /// Pages given to each processor (sums to ≤ k).
    pub allocation: Vec<usize>,
    /// The achieved objective value (makespan or total time).
    pub objective: u64,
}

fn curves(seqs: &[Vec<PageId>], k: usize) -> Vec<MissCurve> {
    seqs.iter().map(|seq| miss_curve(seq, k)).collect()
}

/// Minimum pages for `curve`'s processor to finish within `t` (None if even
/// `k` pages are not enough).
fn min_capacity_for(curve: &MissCurve, k: usize, s: u64, t: Time) -> Option<usize> {
    // service_time(c) is non-increasing in c; binary search the first c
    // meeting the target.
    if curve.service_time(k, s) > t {
        return None;
    }
    let (mut lo, mut hi) = (0usize, k);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if curve.service_time(mid, s) <= t {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

/// Exact optimal static partition for **makespan**.
///
/// Returns the allocation and the optimal makespan over all static
/// partitions of at most `k` pages (processors may receive 0 pages; with
/// `s ≥ 2` a zero-page processor still progresses, all-miss).
///
/// ```
/// use parapage_analysis::static_opt_makespan;
/// use parapage_cache::{PageId, ProcId};
///
/// // Proc 0 cycles 12 pages, proc 1 cycles 2; k = 14 fits both exactly.
/// let seqs: Vec<Vec<PageId>> = [(0u32, 12u64), (1, 2)]
///     .iter()
///     .map(|&(x, w)| (0..100).map(|i| PageId::namespaced(ProcId(x), i % w)).collect())
///     .collect();
/// let opt = static_opt_makespan(&seqs, 14, 10);
/// assert!(opt.allocation[0] >= 12 && opt.allocation[1] >= 2);
/// assert_eq!(opt.objective, 100 + 9 * 12); // compulsory misses only
/// ```
pub fn static_opt_makespan(seqs: &[Vec<PageId>], k: usize, s: u64) -> StaticPartitionOpt {
    let curves = curves(seqs, k);
    // Candidate makespans: service times of each processor at each capacity
    // (the objective takes one of these values). Binary search over the
    // sorted candidate set.
    let mut candidates: Vec<u64> = curves
        .iter()
        .flat_map(|c| (0..=k).map(move |cap| c.service_time(cap, s)))
        .collect();
    candidates.sort_unstable();
    candidates.dedup();

    let feasible = |t: Time| -> Option<Vec<usize>> {
        let mut total = 0usize;
        let mut alloc = Vec::with_capacity(curves.len());
        for c in &curves {
            let need = min_capacity_for(c, k, s, t)?;
            total += need;
            if total > k {
                return None;
            }
            alloc.push(need);
        }
        Some(alloc)
    };

    // Guarantee a feasible fallback candidate: the all-miss time of the
    // longest sequence (a zero-page allocation for everyone is feasible).
    let worst: u64 = seqs.iter().map(|q| q.len() as u64 * s).max().unwrap_or(0);
    if !candidates.contains(&worst) {
        candidates.push(worst);
        candidates.sort_unstable();
    }
    let mut lo = 0usize;
    let mut hi = candidates.len() - 1;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if feasible(candidates[mid]).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let objective = candidates[lo];
    let allocation = feasible(objective).expect("binary search invariant");
    StaticPartitionOpt {
        allocation,
        objective,
    }
}

/// Exact optimal static partition for **total (≡ mean) completion time**,
/// by DP over processors × capacity.
pub fn static_opt_total_time(seqs: &[Vec<PageId>], k: usize, s: u64) -> StaticPartitionOpt {
    let curves = curves(seqs, k);
    let p = curves.len();
    if p == 0 {
        return StaticPartitionOpt {
            allocation: vec![],
            objective: 0,
        };
    }
    // dp[b] = min total time over the processors handled so far using at
    // most b pages; with no processors placed the time is 0 for any budget.
    let mut dp = vec![0u64; k + 1];
    let mut choices: Vec<Vec<usize>> = Vec::with_capacity(p);
    for curve in &curves {
        let mut next = vec![u64::MAX; k + 1];
        let mut choice = vec![0usize; k + 1];
        for b in 0..=k {
            for give in 0..=b {
                let prev = dp[b - give];
                if prev == u64::MAX {
                    continue;
                }
                let t = prev + curve.service_time(give, s);
                if t < next[b] {
                    next[b] = t;
                    choice[b] = give;
                }
            }
        }
        choices.push(choice);
        dp = next;
    }
    // Best budget is k (monotone), but scan to be safe.
    let mut best_b = 0;
    for b in 0..=k {
        if dp[b] <= dp[best_b] {
            best_b = b;
        }
    }
    let objective = dp[best_b];
    // Reconstruct.
    let mut allocation = vec![0usize; p];
    let mut b = best_b;
    for i in (0..p).rev() {
        allocation[i] = choices[i][b];
        b -= allocation[i];
    }
    StaticPartitionOpt {
        allocation,
        objective,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapage_cache::ProcId;

    fn cyc(x: u32, width: u64, len: usize) -> Vec<PageId> {
        (0..len)
            .map(|i| PageId::namespaced(ProcId(x), i as u64 % width))
            .collect()
    }

    #[test]
    fn gives_cache_to_the_hungry_processor() {
        // Proc 0 cycles 12 pages, proc 1 cycles 2; k = 14 fits both.
        let seqs = vec![cyc(0, 12, 200), cyc(1, 2, 200)];
        let opt = static_opt_makespan(&seqs, 14, 10);
        assert!(opt.allocation[0] >= 12);
        assert!(opt.allocation[1] >= 2);
        // Both fit: only compulsory misses; makespan = 200 + 9*12.
        assert_eq!(opt.objective, 200 + 9 * 12);
    }

    #[test]
    fn beats_equal_partition_on_skew() {
        let seqs = vec![cyc(0, 20, 300), cyc(1, 2, 300)];
        let k = 24;
        let s = 10;
        let opt = static_opt_makespan(&seqs, k, s);
        // Equal partition: 12 pages each -> proc 0 thrashes (all miss).
        let equal_makespan = {
            let c0 = miss_curve(&seqs[0], k).service_time(12, s);
            let c1 = miss_curve(&seqs[1], k).service_time(12, s);
            c0.max(c1)
        };
        assert!(
            opt.objective < equal_makespan / 2,
            "opt {} vs equal {equal_makespan}",
            opt.objective
        );
    }

    #[test]
    fn makespan_allocation_is_feasible_and_consistent() {
        let seqs = vec![cyc(0, 5, 100), cyc(1, 9, 150), cyc(2, 3, 80)];
        let k = 16;
        let s = 8;
        let opt = static_opt_makespan(&seqs, k, s);
        assert!(opt.allocation.iter().sum::<usize>() <= k);
        let achieved = seqs
            .iter()
            .zip(&opt.allocation)
            .map(|(q, &c)| miss_curve(q, k).service_time(c, s))
            .max()
            .unwrap();
        assert_eq!(achieved, opt.objective);
    }

    #[test]
    fn total_time_dp_matches_brute_force_small() {
        let seqs = vec![cyc(0, 4, 60), cyc(1, 6, 60)];
        let k = 8;
        let s = 5;
        let opt = static_opt_total_time(&seqs, k, s);
        // Brute force all splits.
        let c0 = miss_curve(&seqs[0], k);
        let c1 = miss_curve(&seqs[1], k);
        let brute = (0..=k)
            .map(|a| c0.service_time(a, s) + c1.service_time(k - a, s))
            .min()
            .unwrap();
        assert_eq!(opt.objective, brute);
        assert!(opt.allocation.iter().sum::<usize>() <= k);
    }

    #[test]
    fn total_time_never_exceeds_makespan_times_p() {
        let seqs = vec![cyc(0, 4, 100), cyc(1, 8, 100), cyc(2, 2, 100)];
        let k = 12;
        let s = 6;
        let total = static_opt_total_time(&seqs, k, s);
        let mk = static_opt_makespan(&seqs, k, s);
        assert!(total.objective <= mk.objective * 3);
        assert!(mk.objective as u128 <= total.objective as u128);
    }

    #[test]
    fn empty_input() {
        let opt = static_opt_makespan(&[], 8, 5);
        assert_eq!(opt.objective, 0);
        assert!(static_opt_total_time(&[], 8, 5).allocation.is_empty());
    }

    #[test]
    fn zero_capacity_processor_still_finishes() {
        // k = 1, two procs: someone gets nothing and runs all-miss.
        let seqs = vec![cyc(0, 1, 50), cyc(1, 1, 50)];
        let opt = static_opt_makespan(&seqs, 1, 10);
        assert!(opt.allocation.iter().sum::<usize>() <= 1);
        assert_eq!(opt.objective, 50 * 10); // the 0-page proc misses all
    }
}
