//! Aligned ASCII tables and CSV export for the experiment binaries.

use std::fmt;

/// A simple column-aligned table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; its length must match the header count.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row/header arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as CSV (headers first).
    pub fn csv(&self) -> String {
        to_csv(&self.headers, &self.rows)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:>width$}", c, width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Renders headers + rows as CSV with minimal quoting (fields containing
/// commas or quotes are quoted, quotes doubled).
pub fn to_csv(headers: &[String], rows: &[Vec<String>]) -> String {
    fn field(s: &str) -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| field(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["p", "ratio"]);
        t.row(["4", "1.50"]).row(["1024", "3.25"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("p") && lines[0].contains("ratio"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].trim_start().starts_with('4'));
        // Right-aligned: both data rows end at the same column.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_misshapen_rows() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn csv_quotes_when_needed() {
        let csv = to_csv(
            &["a".into(), "b".into()],
            &[vec!["1,5".into(), "say \"hi\"".into()]],
        );
        assert_eq!(csv, "a,b\n\"1,5\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn table_csv_roundtrip_shape() {
        let mut t = Table::new(["x"]);
        t.row(["1"]).row(["2"]);
        assert_eq!(t.csv(), "x\n1\n2\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
