//! Exact optimal makespan over the *round-synchronized* schedule class, for
//! micro instances.
//!
//! General offline parallel paging is NP-hard, but a useful certified
//! comparator exists for tiny instances: restrict OPT to schedules that
//! repartition only at multiples of a round length `L = s·k`, give each
//! processor a cold LRU cache of its share for the round (power-of-two
//! shares, the paper's WLOG menu, plus zero), and search the position-tuple
//! state space exhaustively (BFS — all rounds cost the same, and a finish
//! during round `R` always beats any finish in a later round).
//!
//! The result is the exact optimum of a feasible schedule class, hence an
//! **upper bound on the true `T_OPT`** (experiment E16 pairs it with the
//! certified Belady lower bound to bracket true competitive ratios). Note
//! that it does *not* dominate the warm-cache static optimum of
//! [`crate::static_opt`]: micro rounds start cold and re-pay working-set
//! warmup every round.
//!
//! Complexity is `O(Π(nᵢ+1) · |partitions|)` — strictly a micro-instance
//! tool (`p ≤ 3`, sequences of a few hundred requests).

use std::collections::{HashMap, VecDeque};

use parapage_cache::{run_box_budget, PageId, Time};

/// Exact round-synchronized optimal makespan.
///
/// # Panics
/// If `seqs.len() > 3` (state-space guard) or `k == 0`.
pub fn micro_opt_makespan(seqs: &[Vec<PageId>], k: usize, s: u64) -> Time {
    assert!(!seqs.is_empty() && seqs.len() <= 3, "micro instances only");
    assert!(k >= 1);
    let p = seqs.len();
    let round = s * k as u64;

    // Share menu: 0 plus powers of two up to k.
    let mut shares = vec![0usize];
    let mut h = 1;
    while h <= k {
        shares.push(h);
        h *= 2;
    }
    // All partitions (share per processor) with total ≤ k.
    let mut partitions: Vec<Vec<usize>> = vec![vec![]];
    for _ in 0..p {
        let mut next = Vec::new();
        for base in &partitions {
            let used: usize = base.iter().sum();
            for &c in &shares {
                if used + c <= k {
                    let mut v = base.clone();
                    v.push(c);
                    next.push(v);
                }
            }
        }
        partitions = next;
    }
    // Drop dominated partitions (all-zero never helps).
    partitions.retain(|v| v.iter().sum::<usize>() > 0);

    let start: Vec<usize> = vec![0; p];
    let goal: Vec<usize> = seqs.iter().map(Vec::len).collect();
    if start == goal {
        return 0;
    }
    let mut seen: HashMap<Vec<usize>, u64> = HashMap::new();
    seen.insert(start.clone(), 0);
    let mut frontier = VecDeque::from([start]);
    let mut best_final: Option<Time> = None;
    let mut current_depth = 0u64;

    while let Some(state) = frontier.pop_front() {
        let depth = seen[&state];
        if depth > current_depth {
            // Finished scanning a BFS level; if something finished there,
            // no deeper level can beat it.
            if let Some(t) = best_final {
                return current_depth * round + t;
            }
            current_depth = depth;
        }
        for part in &partitions {
            let mut next = Vec::with_capacity(p);
            let mut final_time: Time = 0;
            for x in 0..p {
                let out = run_box_budget(&seqs[x], state[x], part[x], round, s);
                next.push(out.end_index);
                final_time = final_time.max(out.time_used);
            }
            if next == goal {
                let cand = final_time.max(1);
                best_final = Some(best_final.map_or(cand, |b: Time| b.min(cand)));
            } else if next != state && !seen.contains_key(&next) {
                seen.insert(next.clone(), depth + 1);
                frontier.push_back(next);
            }
        }
    }
    match best_final {
        Some(t) => current_depth * round + t,
        None => unreachable!("full-cache rounds always make progress"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_bounds::per_proc_bound;
    use crate::static_opt::static_opt_makespan;
    use parapage_cache::ProcId;

    fn cyc(x: u32, width: u64, len: usize) -> Vec<PageId> {
        (0..len)
            .map(|i| PageId::namespaced(ProcId(x), i as u64 % width))
            .collect()
    }

    #[test]
    fn single_processor_full_cache() {
        // One proc, 4-page cycle, k=8: OPT gives it everything.
        let seqs = vec![cyc(0, 4, 60)];
        let opt = micro_opt_makespan(&seqs, 8, 10);
        // 4 compulsory misses + 56 hits = 96 — done within one round (80)?
        // One round is s*k = 80 < 96, so two rounds are needed, and the
        // second round starts cold. Regardless: sandwiched below.
        let lb = per_proc_bound(&seqs, 8, 10);
        assert!(opt >= lb);
        assert!(opt <= 2 * 80);
    }

    #[test]
    fn sandwich_between_lower_bound_and_serialization() {
        let seqs = vec![cyc(0, 6, 50), cyc(1, 3, 70)];
        let k = 8;
        let s = 8;
        let lb = per_proc_bound(&seqs, k, s);
        let micro = micro_opt_makespan(&seqs, k, s);
        assert!(micro >= lb, "micro {micro} < lb {lb}");
        // Static optima keep caches warm across their whole run, while
        // micro rounds start cold, so neither dominates the other in
        // general; the safe envelope is full serialization.
        let total: u64 = seqs.iter().map(|q| q.len() as u64).sum();
        assert!(micro <= s * total, "micro {micro} vs serial");
        // On this instance the cold rounds happen to be mild:
        let st = static_opt_makespan(&seqs, k, s).objective;
        assert!(micro <= 2 * st, "micro {micro} vs static {st}");
    }

    #[test]
    fn serializing_helps_when_working_sets_exceed_half() {
        // Two procs each cycling 6 pages, k=8: splitting 4/4 thrashes both;
        // micro-OPT can serialize (8 then 0) per round.
        let seqs = vec![cyc(0, 6, 40), cyc(1, 6, 40)];
        let s = 10;
        let micro = micro_opt_makespan(&seqs, 8, s);
        // All-thrash static split: both take 40*10 = 400 concurrently.
        let thrash = 400;
        assert!(
            micro < thrash,
            "micro {micro} should beat thrashing {thrash}"
        );
    }

    #[test]
    fn empty_sequences_cost_nothing() {
        let seqs = vec![vec![], cyc(1, 2, 10)];
        let opt = micro_opt_makespan(&seqs, 4, 5);
        assert!(opt > 0);
        assert_eq!(micro_opt_makespan(&[vec![], vec![]], 4, 5), 0);
    }

    #[test]
    #[should_panic(expected = "micro instances")]
    fn rejects_large_p() {
        let seqs = vec![vec![], vec![], vec![], vec![]];
        micro_opt_makespan(&seqs, 4, 5);
    }
}
