//! Model parameters shared by every algorithm in the workspace.

use std::fmt;

/// The parallel paging model parameters of the paper's §2.
///
/// * `p` processors share a cache of `k > p` pages;
/// * a hit costs 1 time step, a miss costs `s > 1` steps;
/// * algorithms may run with resource augmentation `ξ`, i.e. on a cache of
///   `ξ·k` pages while OPT is charged for `k`.
///
/// Following the paper's WLOG normalization, `k` and `p` are rounded to
/// powers of two by [`ModelParams::normalized`]; all box heights are then
/// powers of two in the range `[k/p, k]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelParams {
    /// Number of processors.
    pub p: usize,
    /// Cache capacity available to OPT, in pages.
    pub k: usize,
    /// Miss penalty: time steps to transfer one page from memory.
    pub s: u64,
}

impl ModelParams {
    /// Creates parameters, validating the model constraints.
    ///
    /// # Panics
    /// If `p == 0`, `k < p`, or `s < 2` (the paper requires `s > 1`).
    pub fn new(p: usize, k: usize, s: u64) -> Self {
        assert!(p >= 1, "need at least one processor");
        assert!(k >= p, "the paper's model requires k >= p (one page each)");
        assert!(s >= 2, "miss penalty must exceed hit cost (s > 1)");
        ModelParams { p, k, s }
    }

    /// Rounds `k` up and `p` down to powers of two (the paper's WLOG step,
    /// which costs only a constant factor of resource augmentation).
    pub fn normalized(self) -> Self {
        let p = if self.p.is_power_of_two() {
            self.p
        } else {
            (self.p.next_power_of_two()) / 2
        };
        let k = self.k.next_power_of_two();
        ModelParams::new(p.max(1), k, self.s)
    }

    /// Rounds only `k` up to a power of two, keeping `p` as given.
    ///
    /// The parallel pagers use this: they size their per-processor state by
    /// the *actual* `p` and round active-processor counts to powers of two
    /// internally, so only `k` needs the WLOG treatment.
    pub fn normalized_k(self) -> Self {
        ModelParams::new(self.p, self.k.next_power_of_two(), self.s)
    }

    /// `true` when both `k` and `p` are powers of two.
    pub fn is_normalized(&self) -> bool {
        self.k.is_power_of_two() && self.p.is_power_of_two()
    }

    /// The minimum box height `k/p` (at least 1).
    pub fn min_height(&self) -> usize {
        (self.k / self.p).max(1)
    }

    /// `ceil(log2(p))`, the paper's ubiquitous `log p` (at least 1).
    pub fn log_p(&self) -> u32 {
        log2_ceil(self.p).max(1)
    }

    /// The power-of-two box heights `{k/p̂, 2k/p̂, …, k}` (ascending), where
    /// `p̂` rounds `p` up to a power of two so the heights divide evenly.
    ///
    /// Requires `k` to be a power of two (use [`ModelParams::normalized_k`]
    /// otherwise).
    pub fn box_heights(&self) -> Vec<usize> {
        debug_assert!(self.k.is_power_of_two(), "call normalized_k() first");
        let mut h = (self.k / self.p.next_power_of_two()).max(1);
        let mut out = Vec::new();
        while h <= self.k {
            out.push(h);
            if h == self.k {
                break;
            }
            h *= 2;
        }
        out
    }
}

impl fmt::Display for ModelParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p={} k={} s={}", self.p, self.k, self.s)
    }
}

/// `ceil(log2(x))` for `x >= 1`; 0 for `x <= 1`.
pub fn log2_ceil(x: usize) -> u32 {
    if x <= 1 {
        0
    } else {
        usize::BITS - (x - 1).leading_zeros()
    }
}

/// `floor(log2(x))` for `x >= 1`.
///
/// # Panics
/// If `x == 0`.
pub fn log2_floor(x: usize) -> u32 {
    assert!(x > 0, "log2_floor(0)");
    usize::BITS - 1 - x.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_helpers() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(8), 3);
        assert_eq!(log2_ceil(9), 4);
        assert_eq!(log2_floor(1), 0);
        assert_eq!(log2_floor(8), 3);
        assert_eq!(log2_floor(9), 3);
    }

    #[test]
    fn normalization_rounds_to_powers_of_two() {
        let params = ModelParams::new(6, 100, 10).normalized();
        assert_eq!(params.p, 4);
        assert_eq!(params.k, 128);
        assert!(params.is_normalized());
    }

    #[test]
    fn box_heights_span_min_to_k() {
        let params = ModelParams::new(4, 32, 10);
        assert_eq!(params.box_heights(), vec![8, 16, 32]);
        assert_eq!(params.min_height(), 8);
        assert_eq!(params.log_p(), 2);
    }

    #[test]
    fn degenerate_single_processor() {
        let params = ModelParams::new(1, 8, 2);
        assert_eq!(params.box_heights(), vec![8]);
        assert_eq!(params.log_p(), 1);
    }

    #[test]
    #[should_panic(expected = "k >= p")]
    fn rejects_cache_smaller_than_processor_count() {
        ModelParams::new(8, 4, 10);
    }

    #[test]
    #[should_panic(expected = "s > 1")]
    fn rejects_unit_miss_penalty() {
        ModelParams::new(1, 4, 1);
    }
}
