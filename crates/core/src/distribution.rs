//! The randomized box-height distribution `D` at the heart of RAND-GREEN and
//! RAND-PAR (paper §3.1).
//!
//! Heights are `j ∈ {k/p, 2k/p, 4k/p, …, k}` and `Pr[j] ∝ k²/(j²p²) ∝ j⁻²`:
//! the probability of a height is inversely proportional to the memory
//! impact `s·j²` of its box, which equalizes every height's expected
//! contribution to impact (Lemma 1). The exponent is configurable so the
//! ablation experiment (E9) can demonstrate that `j⁻²` is the right choice:
//! `j⁻¹` over-spends on tall boxes, `j⁻³` starves them.

use rand::{Rng, RngExt};

use crate::config::ModelParams;

/// A discrete distribution over normalized box heights.
#[derive(Clone, Debug)]
pub struct BoxHeightDist {
    heights: Vec<usize>,
    /// Cumulative probabilities, last entry exactly 1.0.
    cumulative: Vec<f64>,
    probs: Vec<f64>,
}

impl BoxHeightDist {
    /// The paper's distribution: `Pr[j] ∝ j⁻²` over `{k/p·2^i}`.
    pub fn paper(params: &ModelParams) -> Self {
        Self::with_exponent(params, 2.0)
    }

    /// Same support with `Pr[j] ∝ j^(-exponent)` (for ablations).
    pub fn with_exponent(params: &ModelParams, exponent: f64) -> Self {
        let heights = params.box_heights();
        assert!(!heights.is_empty());
        let weights: Vec<f64> = heights
            .iter()
            .map(|&j| (j as f64).powf(-exponent))
            .collect();
        Self::from_weights(heights, &weights)
    }

    /// Builds a distribution from explicit (height, weight) pairs.
    ///
    /// # Panics
    /// If the lists are empty, lengths differ, or weights are non-positive.
    pub fn from_weights(heights: Vec<usize>, weights: &[f64]) -> Self {
        assert_eq!(heights.len(), weights.len());
        assert!(!heights.is_empty());
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0 && weights.iter().all(|&w| w > 0.0));
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let mut cumulative = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for &pr in &probs {
            acc += pr;
            cumulative.push(acc);
        }
        *cumulative.last_mut().expect("non-empty") = 1.0;
        BoxHeightDist {
            heights,
            cumulative,
            probs,
        }
    }

    /// Supported heights, ascending.
    pub fn heights(&self) -> &[usize] {
        &self.heights
    }

    /// Probability of each height, aligned with [`Self::heights`].
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Draws one height.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        let idx = self
            .cumulative
            .partition_point(|&c| c < u)
            .min(self.heights.len() - 1);
        self.heights[idx]
    }

    /// Expected memory impact of one sampled canonical box,
    /// `Σ Pr[j]·s·j²` — by Lemma 1 this is `Θ(log p)` times the per-height
    /// contribution `Θ(s·k²/p²)`.
    pub fn expected_impact(&self, s: u64) -> f64 {
        self.heights
            .iter()
            .zip(&self.probs)
            .map(|(&j, &pr)| pr * s as f64 * (j as f64) * (j as f64))
            .sum()
    }

    /// Expected duration of one sampled canonical box, `Σ Pr[j]·s·j`.
    pub fn expected_duration(&self, s: u64) -> f64 {
        self.heights
            .iter()
            .zip(&self.probs)
            .map(|(&j, &pr)| pr * s as f64 * j as f64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> ModelParams {
        ModelParams::new(8, 64, 10)
    }

    #[test]
    fn paper_distribution_is_inverse_square() {
        let d = BoxHeightDist::paper(&params());
        assert_eq!(d.heights(), &[8, 16, 32, 64]);
        // Pr ratios between adjacent heights must be 4:1.
        for w in d.probs().windows(2) {
            assert!((w[0] / w[1] - 4.0).abs() < 1e-9);
        }
        let total: f64 = d.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_height_impact_contribution_is_flat() {
        // Lemma 1: Pr[j]·s·j² identical across heights.
        let d = BoxHeightDist::paper(&params());
        let contributions: Vec<f64> = d
            .heights()
            .iter()
            .zip(d.probs())
            .map(|(&j, &pr)| pr * 10.0 * (j * j) as f64)
            .collect();
        for c in &contributions {
            assert!((c - contributions[0]).abs() < 1e-6);
        }
    }

    #[test]
    fn expected_impact_is_log_p_times_flat_contribution() {
        let p = params();
        let d = BoxHeightDist::paper(&p);
        let flat = d.probs()[0] * 10.0 * (d.heights()[0] * d.heights()[0]) as f64;
        let levels = d.heights().len() as f64;
        assert!((d.expected_impact(10) - flat * levels).abs() < 1e-6);
    }

    #[test]
    fn sampling_matches_probabilities() {
        let d = BoxHeightDist::paper(&params());
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let mut counts = vec![0usize; d.heights().len()];
        for _ in 0..n {
            let h = d.sample(&mut rng);
            let idx = d.heights().iter().position(|&x| x == h).unwrap();
            counts[idx] += 1;
        }
        for (idx, &pr) in d.probs().iter().enumerate() {
            let emp = counts[idx] as f64 / n as f64;
            assert!(
                (emp - pr).abs() < 0.01,
                "height {} empirical {} expected {}",
                d.heights()[idx],
                emp,
                pr
            );
        }
    }

    #[test]
    fn single_height_support() {
        let p1 = ModelParams::new(1, 16, 10);
        let d = BoxHeightDist::paper(&p1);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(d.sample(&mut rng), 16);
    }

    #[test]
    fn ablation_exponents_shift_mass() {
        let p = params();
        let flat = BoxHeightDist::with_exponent(&p, 0.0);
        let steep = BoxHeightDist::with_exponent(&p, 3.0);
        // Exponent 0: uniform. Exponent 3: more mass on small heights than
        // the paper's 2.
        assert!((flat.probs()[0] - 0.25).abs() < 1e-12);
        let paper = BoxHeightDist::paper(&p);
        assert!(steep.probs()[0] > paper.probs()[0]);
    }
}
