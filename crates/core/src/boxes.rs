//! Memory boxes and box profiles — the paper's WLOG currency of allocation.
//!
//! A **box of height `h`** gives a processor `h` cache pages for `s·h` time
//! steps (paper §2). Its **memory impact** is `height × duration = s·h²`.
//! A **box profile** is the sequence of boxes a (green or parallel) paging
//! algorithm assigns to one processor; *compartmentalized* profiles start
//! every box with an empty cache.

use parapage_cache::{run_window, CacheStats, LruCache, PageId, Time};

use crate::config::ModelParams;

/// One memory box: `height` pages for `duration` time steps.
///
/// Canonical paper boxes have `duration == s·height`; the engine also uses
/// free-form durations for stall intervals (`height == 0`) and truncated
/// segments, so duration is stored explicitly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemBox {
    /// Cache pages available inside the box.
    pub height: usize,
    /// Lifetime of the box in time steps.
    pub duration: Time,
}

impl MemBox {
    /// The canonical paper box: height `h`, duration `s·h`.
    pub fn canonical(height: usize, s: u64) -> Self {
        MemBox {
            height,
            duration: s * height as u64,
        }
    }

    /// Memory impact of this box (`height × duration`); `s·h²` for canonical
    /// boxes.
    pub fn impact(&self) -> u128 {
        self.height as u128 * self.duration as u128
    }
}

/// A box profile: the ordered boxes assigned to one processor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BoxProfile {
    boxes: Vec<MemBox>,
}

impl BoxProfile {
    /// An empty profile.
    pub fn new() -> Self {
        BoxProfile::default()
    }

    /// Appends a box.
    pub fn push(&mut self, b: MemBox) {
        self.boxes.push(b);
    }

    /// The boxes, in allocation order.
    pub fn boxes(&self) -> &[MemBox] {
        &self.boxes
    }

    /// Number of boxes.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// `true` when the profile has no boxes.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Total memory impact of the profile.
    pub fn impact(&self) -> u128 {
        self.boxes.iter().map(MemBox::impact).sum()
    }

    /// Total duration of the profile.
    pub fn duration(&self) -> Time {
        self.boxes.iter().map(|b| b.duration).sum()
    }

    /// Whether every box height is one of the normalized heights
    /// `{k/p·2^i}` and durations are canonical (`s·h`).
    pub fn is_normalized(&self, params: &ModelParams) -> bool {
        let min = params.min_height();
        self.boxes.iter().all(|b| {
            b.height >= min
                && b.height <= params.k
                && (b.height % min == 0)
                && (b.height / min).is_power_of_two()
                && b.duration == params.s * b.height as u64
        })
    }
}

impl FromIterator<MemBox> for BoxProfile {
    fn from_iter<T: IntoIterator<Item = MemBox>>(iter: T) -> Self {
        BoxProfile {
            boxes: iter.into_iter().collect(),
        }
    }
}

/// Outcome of serving a request sequence through a box profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfileRun {
    /// First request index not served.
    pub end_index: usize,
    /// Whether the whole sequence completed within the profile.
    pub finished: bool,
    /// Hit/miss totals across all boxes.
    pub stats: CacheStats,
    /// Memory impact actually allocated: the sum of impacts of the boxes
    /// *used* (all boxes up to and including the one where the sequence
    /// finished; trailing unused boxes are not charged).
    pub impact_used: u128,
    /// Wall-clock time elapsed until completion (or until the profile ran
    /// out): full durations of all boxes before the last, plus time used in
    /// the last.
    pub elapsed: Time,
}

/// Serves `seq` through `profile` with compartmentalized semantics: each box
/// starts with an empty LRU cache of its height.
///
/// This is the reference executor used to score green-paging algorithms: the
/// impact of the boxes consumed is exactly the paper's objective.
pub fn run_profile(seq: &[PageId], profile: &BoxProfile, s: u64) -> ProfileRun {
    let mut idx = 0;
    let mut stats = CacheStats::default();
    let mut impact = 0u128;
    let mut elapsed: Time = 0;
    for b in profile.boxes() {
        if idx >= seq.len() {
            break;
        }
        let mut cache = LruCache::new(b.height);
        let out = run_window(seq, idx, &mut cache, b.duration, s);
        idx = out.end_index;
        stats += out.stats;
        impact += b.impact();
        if out.finished {
            elapsed += out.time_used;
            return ProfileRun {
                end_index: idx,
                finished: true,
                stats,
                impact_used: impact,
                elapsed,
            };
        }
        elapsed += b.duration;
    }
    ProfileRun {
        end_index: idx,
        finished: idx >= seq.len(),
        stats,
        impact_used: impact,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(vals: &[u64]) -> Vec<PageId> {
        vals.iter().map(|&v| PageId(v)).collect()
    }

    #[test]
    fn canonical_box_impact_is_s_h_squared() {
        let b = MemBox::canonical(8, 10);
        assert_eq!(b.duration, 80);
        assert_eq!(b.impact(), 640);
    }

    #[test]
    fn profile_totals() {
        let profile: BoxProfile = [MemBox::canonical(2, 5), MemBox::canonical(4, 5)]
            .into_iter()
            .collect();
        assert_eq!(profile.impact(), 2 * 10 + 4 * 20);
        assert_eq!(profile.duration(), 30);
        assert_eq!(profile.len(), 2);
    }

    #[test]
    fn normalization_check() {
        let params = ModelParams::new(4, 32, 10);
        let good: BoxProfile = [MemBox::canonical(8, 10), MemBox::canonical(32, 10)]
            .into_iter()
            .collect();
        assert!(good.is_normalized(&params));
        let bad_height: BoxProfile = [MemBox::canonical(24, 10)].into_iter().collect();
        assert!(!bad_height.is_normalized(&params));
        let bad_duration: BoxProfile = [MemBox {
            height: 8,
            duration: 7,
        }]
        .into_iter()
        .collect();
        assert!(!bad_duration.is_normalized(&params));
    }

    #[test]
    fn run_profile_compartmentalizes_between_boxes() {
        // Cycle of 3 pages; boxes of height 3 hold the whole cycle, but each
        // new box pays the compulsory misses again.
        let s = 10;
        let requests = seq(&[1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3]);
        let profile: BoxProfile = std::iter::repeat_n(MemBox::canonical(3, s), 4).collect();
        let run = run_profile(&requests, &profile, s);
        assert!(run.finished);
        // First box: 3 misses (30 time, budget exhausted). Each subsequent
        // box re-misses its first pages.
        assert!(
            run.stats.misses > 3,
            "compartmentalization forces re-misses"
        );
    }

    #[test]
    fn run_profile_stops_charging_after_finish() {
        let s = 10;
        let requests = seq(&[1]);
        let profile: BoxProfile = [MemBox::canonical(4, s), MemBox::canonical(4, s)]
            .into_iter()
            .collect();
        let run = run_profile(&requests, &profile, s);
        assert!(run.finished);
        assert_eq!(run.impact_used, MemBox::canonical(4, s).impact());
        assert_eq!(run.elapsed, s); // one miss
    }

    #[test]
    fn run_profile_reports_unfinished() {
        let s = 10;
        let requests: Vec<PageId> = (0..100).map(PageId).collect();
        let profile: BoxProfile = [MemBox::canonical(2, s)].into_iter().collect();
        let run = run_profile(&requests, &profile, s);
        assert!(!run.finished);
        assert_eq!(run.end_index, 2); // box of height 2 serves 2 all-miss requests
        assert_eq!(run.elapsed, 20);
    }

    #[test]
    fn empty_sequence_finishes_immediately() {
        let run = run_profile(&[], &BoxProfile::new(), 5);
        assert!(run.finished);
        assert_eq!(run.impact_used, 0);
        assert_eq!(run.elapsed, 0);
    }
}
