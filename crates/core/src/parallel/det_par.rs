//! DET-PAR (paper §3.3, Lemma 6): the deterministic *well-rounded* parallel
//! pager achieving the optimal `O(log p)` competitive ratio for makespan —
//! and simultaneously for mean completion time (Corollary 3).
//!
//! Execution proceeds in **phases**; a phase ends when the number of active
//! processors halves. Within a phase with base height `b = k/p_Q`:
//!
//! * every active processor always holds a box of height at least `b`
//!   (property 1 of well-roundedness);
//! * for each **tall** height `z > k/log p`, a single box of height `z`
//!   cycles round-robin through the processors;
//! * for each **short** height `b ≤ z ≤ k/log p`, a `z`-*strip* of
//!   `k/log p` memory runs `k/(z·log p)` concurrent height-`z` boxes,
//!   assigned round-robin, so every processor receives a height-`z` box
//!   every `s·z²·log p / b` steps (property 2).
//!
//! The policy is *oblivious*: it reads only the active-processor set.
//!
//! ### Scheduling grid
//!
//! Every class-`z` box lasts `s·z`, and all heights are `b·2^c`, so every
//! box boundary falls on a multiple of `d_b = s·b` in phase-local time. The
//! allocator therefore emits grants of length (at most) `d_b`, each carrying
//! the **maximum** height over the classes currently serving that processor;
//! consecutive equal-or-growing heights let the engine keep cache contents,
//! so a tall box experienced as `2^c` consecutive grants behaves exactly
//! like one box.

use parapage_cache::{CodecError, ProcId, SnapReader, SnapWriter, Time};

use crate::config::{log2_ceil, log2_floor, ModelParams};
use crate::parallel::{BoxAllocator, Grant};

/// One phase of DET-PAR, for analysis and the well-roundedness checker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseRecord {
    /// Phase start time.
    pub start: Time,
    /// Base height `b = k/p_Q` for the phase.
    pub base_height: usize,
    /// Number of processors in the phase roster (active at phase start).
    pub roster_len: usize,
}

#[derive(Clone, Copy, Debug)]
struct ClassSched {
    /// Box height of this class.
    z: usize,
    /// Concurrent boxes of this class (`k/(z·log p)` for strips, 1 for
    /// tall heights).
    slots: usize,
    /// Box duration `s·z`.
    period: Time,
}

/// The paper's deterministic well-rounded parallel pager.
///
/// ```
/// use parapage_core::{BoxAllocator, DetPar, ModelParams};
/// use parapage_cache::ProcId;
///
/// let params = ModelParams::new(8, 64, 10);
/// let mut det = DetPar::new(&params);
/// let grant = det.grant(ProcId(0), 0);
/// // First phase: base height k/(p/2) = 16; every grant is at least that.
/// assert!(grant.height >= 16);
/// assert_eq!(det.phases()[0].base_height, 16);
/// ```
pub struct DetPar {
    params: ModelParams,
    /// The global `log p` used for strip sizing.
    log_p: usize,
    active: Vec<bool>,
    active_count: usize,
    /// Roster index of each processor in the current phase
    /// (`usize::MAX` when not in the roster).
    roster_index: Vec<usize>,
    roster_len: usize,
    base_height: usize,
    base_period: Time,
    classes: Vec<ClassSched>,
    phase_start: Time,
    pending_new_phase: bool,
    phases: Vec<PhaseRecord>,
}

impl DetPar {
    /// Creates DET-PAR for the given (normalized) model parameters.
    pub fn new(params: &ModelParams) -> Self {
        let params = params.normalized_k();
        DetPar {
            params,
            log_p: log2_ceil(params.p).max(1) as usize,
            active: vec![true; params.p],
            active_count: params.p,
            roster_index: vec![usize::MAX; params.p],
            roster_len: 0,
            base_height: 1,
            base_period: 1,
            classes: Vec::new(),
            phase_start: 0,
            pending_new_phase: true,
            phases: Vec::new(),
        }
    }

    /// The phases executed so far (the current one last).
    pub fn phases(&self) -> &[PhaseRecord] {
        &self.phases
    }

    /// Upper bound on concurrent memory, as a multiple of `k` (the resource
    /// augmentation `ξ`): base boxes `≤ 2k`, strips `≤ k`, tall boxes
    /// `≤ 2k`. The engine audit (experiments E4/E5) observes ≤ 3.4k in
    /// practice; `O(1)`, as Lemma 6 requires.
    pub const MEMORY_FACTOR: usize = 5;

    fn start_phase(&mut self, now: Time) {
        let k = self.params.k;
        let s = self.params.s;
        let mut rank = 0usize;
        for x in 0..self.params.p {
            self.roster_index[x] = if self.active[x] {
                let r = rank;
                rank += 1;
                r
            } else {
                usize::MAX
            };
        }
        self.roster_len = rank.max(1);
        let r_pow = self.roster_len.next_power_of_two();
        // p_Q = active count at phase END = half the (rounded) start count.
        let p_q = (r_pow / 2).max(1);
        self.base_height = (k / p_q).max(1).min(k);
        self.base_period = s * self.base_height as u64;
        self.phase_start = now;
        // Height classes above the base.
        self.classes.clear();
        let tall_threshold = (k / self.log_p).max(1);
        let mut z = self.base_height * 2;
        while z <= k {
            let slots = if z > tall_threshold {
                1
            } else {
                (k / (z * self.log_p)).max(1)
            };
            self.classes.push(ClassSched {
                z,
                slots,
                period: s * z as u64,
            });
            z *= 2;
        }
        self.phases.push(PhaseRecord {
            start: now,
            base_height: self.base_height,
            roster_len: self.roster_len,
        });
    }

    /// Whether roster position `ix` is served by a class at generation `g`.
    fn served(ix: usize, g: u64, slots: usize, roster: usize) -> bool {
        if slots >= roster {
            return true;
        }
        let start = ((g % roster as u64) as usize * (slots % roster)) % roster;
        let pos = (ix + roster - start) % roster;
        pos < slots
    }

    /// Height of processor with roster index `ix` at phase-local time `tau`.
    fn height_at(&self, ix: usize, tau: Time) -> usize {
        let mut h = self.base_height;
        for c in &self.classes {
            let g = tau / c.period;
            if Self::served(ix, g, c.slots, self.roster_len) && c.z > h {
                h = c.z;
            }
        }
        h
    }
}

impl BoxAllocator for DetPar {
    fn grant(&mut self, proc: ProcId, now: Time) -> Grant {
        if self.pending_new_phase {
            self.start_phase(now);
            self.pending_new_phase = false;
        }
        let ix = self.roster_index[proc.idx()];
        debug_assert!(ix != usize::MAX, "grant for a processor not in roster");
        let tau = now - self.phase_start;
        let height = self.height_at(ix, tau);
        let duration = self.base_period - (tau % self.base_period);
        Grant { height, duration }
    }

    fn on_proc_finished(&mut self, proc: ProcId, _now: Time) {
        if self.active[proc.idx()] {
            self.active[proc.idx()] = false;
            self.active_count -= 1;
        }
        // The phase ends once the roster has halved.
        if self.active_count <= self.roster_len / 2 {
            self.pending_new_phase = true;
        }
    }

    /// Degraded mode, entered only when a supervising wrapper (e.g.
    /// `HardenedAllocator`) asks for it: on `k → k'`, shrink the working
    /// `k` to the largest power of two ≤ `k'` and cut the current phase
    /// short, so the next grant opens a phase with rescaled base height
    /// `b = k'/p_Q` and rebuilt height classes. Budgets never grow back:
    /// pressure only tightens. A bare (unwrapped) DET-PAR stays oblivious
    /// and keeps allocating against the original `k`.
    fn on_budget_shrunk(&mut self, new_k: usize) {
        let k_new = 1usize << log2_floor(new_k.max(1));
        if k_new < self.params.k {
            self.params.k = k_new;
            self.pending_new_phase = true;
        }
    }

    fn checkpoint(&self, w: &mut SnapWriter) -> Result<(), CodecError> {
        // params.k is dynamic (shrinks under on_budget_shrunk); p, s and
        // log_p are construction-time constants.
        w.put_usize(self.params.k);
        w.put_len(self.active.len());
        for &a in &self.active {
            w.put_bool(a);
        }
        for &ix in &self.roster_index {
            w.put_u64(if ix == usize::MAX {
                u64::MAX
            } else {
                ix as u64
            });
        }
        w.put_usize(self.roster_len);
        w.put_usize(self.base_height);
        w.put_u64(self.base_period);
        w.put_len(self.classes.len());
        for c in &self.classes {
            w.put_usize(c.z);
            w.put_usize(c.slots);
            w.put_u64(c.period);
        }
        w.put_u64(self.phase_start);
        w.put_bool(self.pending_new_phase);
        w.put_len(self.phases.len());
        for ph in &self.phases {
            w.put_u64(ph.start);
            w.put_usize(ph.base_height);
            w.put_usize(ph.roster_len);
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), CodecError> {
        let k = r.get_usize()?;
        let p = r.get_len()?;
        if p != self.params.p {
            return Err(CodecError::Invalid("DET-PAR processor count mismatch"));
        }
        let mut active = Vec::with_capacity(p);
        for _ in 0..p {
            active.push(r.get_bool()?);
        }
        let mut roster_index = Vec::with_capacity(p);
        for _ in 0..p {
            let raw = r.get_u64()?;
            roster_index.push(if raw == u64::MAX {
                usize::MAX
            } else {
                usize::try_from(raw)
                    .map_err(|_| CodecError::Invalid("DET-PAR roster index overflow"))?
            });
        }
        let roster_len = r.get_usize()?;
        let base_height = r.get_usize()?;
        let base_period = r.get_u64()?;
        let n_classes = r.get_len()?;
        let mut classes = Vec::with_capacity(n_classes);
        for _ in 0..n_classes {
            let z = r.get_usize()?;
            let slots = r.get_usize()?;
            let period = r.get_u64()?;
            classes.push(ClassSched { z, slots, period });
        }
        let phase_start = r.get_u64()?;
        let pending_new_phase = r.get_bool()?;
        let n_phases = r.get_len()?;
        let mut phases = Vec::with_capacity(n_phases);
        for _ in 0..n_phases {
            let start = r.get_u64()?;
            let bh = r.get_usize()?;
            let rl = r.get_usize()?;
            phases.push(PhaseRecord {
                start,
                base_height: bh,
                roster_len: rl,
            });
        }
        if base_period == 0 && !pending_new_phase {
            return Err(CodecError::Invalid("DET-PAR zero base period"));
        }
        self.params.k = k;
        self.active_count = active.iter().filter(|&&a| a).count();
        self.active = active;
        self.roster_index = roster_index;
        self.roster_len = roster_len;
        self.base_height = base_height;
        self.base_period = base_period;
        self.classes = classes;
        self.phase_start = phase_start;
        self.pending_new_phase = pending_new_phase;
        self.phases = phases;
        Ok(())
    }

    fn oblivious(&self) -> bool {
        // The paper's Algorithm 1 is oblivious by construction: decisions
        // depend only on the grant/finish history, never on hit/miss
        // feedback (observe/observe_accesses keep their no-op defaults).
        true
    }

    fn name(&self) -> &'static str {
        "DET-PAR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams::new(8, 64, 10)
    }

    #[test]
    fn first_phase_base_height_is_2k_over_p() {
        let p = params();
        let mut dp = DetPar::new(&p);
        let g = dp.grant(ProcId(0), 0);
        // r0 = 8, p_Q = 4, b = 64/4 = 16.
        assert_eq!(dp.phases()[0].base_height, 16);
        assert!(g.height >= 16);
        assert!(g.duration >= 1 && g.duration <= 10 * 16);
    }

    #[test]
    fn heights_are_power_of_two_multiples_of_base() {
        let p = params();
        let mut dp = DetPar::new(&p);
        dp.grant(ProcId(0), 0);
        let b = dp.base_height;
        for ix in 0..8 {
            for g in 0..200u64 {
                let h = dp.height_at(ix, g * dp.base_period);
                assert!(h >= b && h <= p.k);
                assert!((h / b).is_power_of_two() && h % b == 0);
            }
        }
    }

    #[test]
    fn every_processor_gets_every_height_periodically() {
        // Property 2 of well-roundedness: for each height z, each roster
        // index sees a box of height >= z within the class period bound.
        let p = params();
        let mut dp = DetPar::new(&p);
        dp.grant(ProcId(0), 0);
        let roster = dp.roster_len;
        let b = dp.base_height;
        let s = p.s;
        let log_p = dp.log_p as u64;
        for c in dp.classes.clone() {
            let z = c.z as u64;
            // Bound from Lemma 6 (slack 2 covers tall classes).
            let bound = 2 * s * z * z * log_p / b as u64 + c.period;
            for ix in 0..roster {
                let mut last_served_end: Option<u64> = None;
                let mut max_gap = 0u64;
                let mut prev_end = 0u64;
                let horizon = bound * 4;
                let mut t = 0u64;
                while t < horizon {
                    let g = t / c.period;
                    if DetPar::served(ix, g, c.slots, roster) {
                        let start = g * c.period;
                        max_gap = max_gap.max(start.saturating_sub(prev_end));
                        prev_end = (g + 1) * c.period;
                        last_served_end = Some(prev_end);
                    }
                    t += c.period;
                }
                assert!(
                    last_served_end.is_some(),
                    "roster {ix} never served by class z={z}"
                );
                assert!(
                    max_gap <= bound,
                    "class z={z} roster {ix}: gap {max_gap} > bound {bound}"
                );
            }
        }
    }

    #[test]
    fn concurrent_memory_stays_within_factor() {
        let p = params();
        let mut dp = DetPar::new(&p);
        dp.grant(ProcId(0), 0);
        let roster = dp.roster_len;
        for step in 0..500u64 {
            let tau = step * dp.base_period;
            let total: usize = (0..roster).map(|ix| dp.height_at(ix, tau)).sum();
            assert!(
                total <= DetPar::MEMORY_FACTOR * p.k,
                "step {step}: {total} > {}k",
                DetPar::MEMORY_FACTOR
            );
        }
    }

    #[test]
    fn phase_transition_halves_roster_and_doubles_base() {
        let p = params();
        let mut dp = DetPar::new(&p);
        dp.grant(ProcId(0), 0);
        assert_eq!(dp.phases().len(), 1);
        // Finish half the processors.
        for x in 0..4 {
            dp.on_proc_finished(ProcId(x), 100);
        }
        // Next grant starts the new phase.
        let g = dp.grant(ProcId(5), 160);
        assert_eq!(dp.phases().len(), 2);
        let ph = dp.phases()[1];
        assert_eq!(ph.roster_len, 4);
        assert_eq!(ph.base_height, 32); // k/(4/2) = 64/2
        assert!(g.height >= 32);
    }

    #[test]
    fn single_processor_gets_whole_cache() {
        let p = ModelParams::new(1, 16, 10);
        let mut dp = DetPar::new(&p);
        let g = dp.grant(ProcId(0), 0);
        assert_eq!(g.height, 16);
    }

    #[test]
    fn grants_align_to_base_grid() {
        let p = params();
        let mut dp = DetPar::new(&p);
        let g0 = dp.grant(ProcId(0), 0);
        assert_eq!(g0.duration, dp.base_period);
        // Asking mid-period returns the remainder.
        let g1 = dp.grant(ProcId(1), 13);
        assert_eq!(g1.duration, dp.base_period - 13);
    }

    #[test]
    fn memory_pressure_rescales_base_height() {
        let p = params();
        let mut dp = DetPar::new(&p);
        dp.grant(ProcId(0), 0);
        assert_eq!(dp.phases()[0].base_height, 16);
        // k: 64 → 16. Next grant opens a rescaled phase: all 8 processors
        // still active, p_Q = 4, b = 16/4 = 4.
        dp.on_budget_shrunk(16);
        let g = dp.grant(ProcId(1), 160);
        assert_eq!(dp.phases().len(), 2);
        assert_eq!(dp.phases()[1].base_height, 4);
        assert!(g.height <= 16);
    }

    #[test]
    fn pressure_never_grows_the_budget() {
        let p = params();
        let mut dp = DetPar::new(&p);
        dp.grant(ProcId(0), 0);
        dp.on_budget_shrunk(16);
        dp.on_budget_shrunk(4096);
        assert_eq!(dp.params.k, 16);
    }

    #[test]
    fn checkpoint_round_trips_mid_phase() {
        let p = params();
        let mut dp = DetPar::new(&p);
        dp.grant(ProcId(0), 0);
        for x in 0..3 {
            dp.on_proc_finished(ProcId(x), 50 + x as u64);
        }
        let mut w = SnapWriter::new();
        dp.checkpoint(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut restored = DetPar::new(&p);
        restored.restore(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(restored.phases(), dp.phases());
        assert_eq!(restored.active_count, dp.active_count);
        // Identical future behaviour, across the next phase boundary.
        restored.on_proc_finished(ProcId(3), 90);
        dp.on_proc_finished(ProcId(3), 90);
        for t in [100u64, 160, 320, 480] {
            for x in 4..8 {
                assert_eq!(restored.grant(ProcId(x), t), dp.grant(ProcId(x), t));
            }
        }
        assert_eq!(restored.phases(), dp.phases());
    }

    #[test]
    fn checkpoint_rejects_wrong_processor_count() {
        let mut dp = DetPar::new(&params());
        dp.grant(ProcId(0), 0);
        let mut w = SnapWriter::new();
        dp.checkpoint(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut other = DetPar::new(&ModelParams::new(4, 64, 10));
        assert!(matches!(
            other.restore(&mut SnapReader::new(&bytes)),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn oblivious_policy_ignores_observe() {
        // DET-PAR inherits the default no-op observe; compile-time check
        // that calling it does not disturb state.
        let p = params();
        let mut dp = DetPar::new(&p);
        let before = dp.grant(ProcId(0), 0);
        dp.observe(
            ProcId(0),
            &parapage_cache::WindowOutcome {
                end_index: 1,
                stats: Default::default(),
                time_used: 1,
                finished: false,
            },
        );
        let after = dp.grant(ProcId(0), before.duration);
        assert!(after.duration >= 1);
    }
}
