//! Parallel paging algorithms (paper §3.2–§3.3) and baselines.
//!
//! A parallel pager is a [`BoxAllocator`]: a policy that, whenever a
//! processor has no active allocation, grants it a box (or a stall
//! interval). The execution engine in `parapage-sched` drives allocators
//! against concrete request sequences and measures makespan, mean completion
//! time, and memory usage.
//!
//! Implemented policies:
//!
//! * [`rand_par::RandPar`] — the paper's randomized `O(log p)`-competitive
//!   algorithm (Theorem 2): phases → chunks, primary part of `k/r` boxes for
//!   everyone, secondary part of one RAND-GREEN-sampled box per processor,
//!   packed `k/j` at a time.
//! * [`det_par::DetPar`] — the paper's deterministic *well-rounded*
//!   algorithm (Theorem 3): per-phase base boxes for everyone, one cycling
//!   box per tall height, and a `k/log p`-wide round-robin strip per short
//!   height.
//! * [`baselines::StaticPartition`] — `k/p` to everyone, forever.
//! * [`baselines::PropMissPartition`] — adaptive epoch-based partition
//!   proportional to recent miss counts (a practical, non-oblivious
//!   comparator).
//! * [`ucp::UcpPartition`] — utility-based cache partitioning
//!   (Qureshi & Patt, MICRO 2006): epoch-based greedy allocation by
//!   marginal miss-curve utility from shadow Mattson monitors — the
//!   strongest practical adaptive baseline here.
//! * [`blackbox::BlackboxGreenPacker`] — the §4 construction: each processor
//!   runs a green pager as a black box and the packer fits the requested
//!   boxes into memory, handing out minimum boxes while a request waits.
//!   This is the `O(log² p)`-style comparator that Theorem 4 shows cannot be
//!   optimal.

pub mod baselines;
pub mod blackbox;
pub mod det_par;
pub mod hardened;
pub mod rand_par;
pub mod ucp;

use parapage_cache::{CodecError, ProcId, SnapReader, SnapWriter, Time, WindowOutcome};

/// An environmental fault injected into a run, delivered to the policy by
/// the engine when simulated time reaches the event.
///
/// Faults model the failure modes a production pager must survive: a
/// processor freezing, fetch latency spiking, and the global memory budget
/// shrinking under pressure. The engine applies each fault's *mechanical*
/// effect itself (freezing grant issuance, scaling the miss penalty,
/// tightening the enforced memory limit); this notification exists so that
/// policies can *adapt* — see [`hardened::HardenedAllocator`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Processor `proc` is frozen during `[from, until)`: the engine issues
    /// it no grants in that window (in-flight grants run to completion).
    ProcStall {
        /// The frozen processor.
        proc: ProcId,
        /// Window start (inclusive).
        from: Time,
        /// Window end (exclusive).
        until: Time,
    },
    /// The miss penalty is multiplied by `factor` for grants starting in
    /// `[from, until)` (a fetch-latency spike: contended bus, slow tier).
    LatencySpike {
        /// Window start (inclusive).
        from: Time,
        /// Window end (exclusive).
        until: Time,
        /// Multiplier applied to the model's `s` (≥ 1).
        factor: u64,
    },
    /// From time `at` on, the global memory budget shrinks to `new_limit`
    /// pages (`k → k'`); the engine enforces the tightened limit on every
    /// subsequent grant.
    MemoryPressure {
        /// Time the pressure hits.
        at: Time,
        /// The shrunken budget `k'`, in pages.
        new_limit: usize,
    },
}

impl FaultEvent {
    /// The simulated time at which the fault takes effect.
    pub fn at(&self) -> Time {
        match *self {
            FaultEvent::ProcStall { from, .. } => from,
            FaultEvent::LatencySpike { from, .. } => from,
            FaultEvent::MemoryPressure { at, .. } => at,
        }
    }
}

/// One allocation decision: `height` cache pages for `duration` time steps.
///
/// `height == 0` is a *stall*: the processor makes no progress for the
/// duration (the paper explicitly allows stalling).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grant {
    /// Cache pages available to the processor for this interval.
    pub height: usize,
    /// Length of the interval; must be ≥ 1.
    pub duration: Time,
}

impl Grant {
    /// A stall interval of the given length.
    pub fn stall(duration: Time) -> Self {
        Grant {
            height: 0,
            duration,
        }
    }
}

/// A parallel paging policy, driven by the execution engine.
///
/// Contract with the engine:
/// * [`BoxAllocator::grant`] is called exactly when the processor has no
///   active allocation, with `now` equal to the expiry of its previous grant
///   (or 0 initially); calls arrive in global time order.
/// * [`BoxAllocator::observe`] is called after each grant elapses, before
///   the next `grant` call for that processor. **Oblivious** policies (all
///   of the paper's) must keep the default no-op implementation — this is
///   what "oblivious" means operationally.
/// * [`BoxAllocator::on_proc_finished`] is called once when a processor
///   serves its last request; the engine never asks for grants for it again.
pub trait BoxAllocator {
    /// Next allocation for processor `proc` starting at time `now`.
    fn grant(&mut self, proc: ProcId, now: Time) -> Grant;

    /// `true` when this policy's decisions are a pure function of its own
    /// grant/finish history — it never reads the feedback channels
    /// ([`BoxAllocator::observe`] / [`BoxAllocator::observe_accesses`] keep
    /// their no-op defaults). All of the paper's algorithms are oblivious;
    /// the monitors (PROP-MISS, SRPT, UCP, bb-green) are not.
    ///
    /// The engine uses this as a *batching license*: for an oblivious
    /// policy, several processors whose grants expire at the same timestamp
    /// can be decided with one [`BoxAllocator::grant_batch`] call before
    /// any of their windows run, because no feedback from window `x` can
    /// influence the decision for window `y`. Declaring `true` while
    /// implementing `observe*` is a contract violation — the conform
    /// differential sweep will catch the divergence.
    fn oblivious(&self) -> bool {
        false
    }

    /// Decide grants for a batch of processors whose previous grants all
    /// expired at the same `now`, in the engine's canonical (ascending
    /// processor-id) order. `procs` holds the ids; the result must be the
    /// grants in the same order.
    ///
    /// The default simply loops over [`BoxAllocator::grant`], which is
    /// always correct; policies with per-call overhead worth amortizing can
    /// override it. Only called when [`BoxAllocator::oblivious`] is `true`.
    fn grant_batch(&mut self, procs: &[ProcId], now: Time, out: &mut Vec<Grant>) {
        out.extend(procs.iter().map(|&p| self.grant(p, now)));
    }

    /// Notification that `proc` completed its sequence at time `now`.
    fn on_proc_finished(&mut self, proc: ProcId, now: Time);

    /// Feedback about the interval that just elapsed (default: ignored).
    fn observe(&mut self, _proc: ProcId, _outcome: &WindowOutcome) {}

    /// The page stream served during the interval that just elapsed
    /// (default: ignored). Non-oblivious policies that need reuse
    /// information — e.g. [`ucp::UcpPartition`]'s shadow Mattson monitors —
    /// read it here; the paper's oblivious algorithms never implement this.
    fn observe_accesses(&mut self, _proc: ProcId, _served: &[parapage_cache::PageId]) {}

    /// Notification that a fault was injected at the event's timestamp
    /// (default: ignored). The engine delivers every injected
    /// [`FaultEvent`] here before making any decision at that time;
    /// [`hardened::HardenedAllocator`] reacts by tightening the budget it
    /// clamps grants to. A bare paper policy deliberately keeps the default
    /// — obliviousness means it cannot see the environment change, which is
    /// exactly what the hardened wrapper compensates for.
    fn on_fault(&mut self, _event: &FaultEvent) {}

    /// Degraded-mode request: the global budget shrank to `new_k` pages and
    /// the policy should reshape future grants accordingly (default:
    /// ignored). Unlike [`BoxAllocator::on_fault`], this is *not* called by
    /// the engine — only by a supervising wrapper such as
    /// [`hardened::HardenedAllocator`], which invokes it on
    /// [`FaultEvent::MemoryPressure`] so that, e.g.,
    /// [`det_par::DetPar`] rescales its base height to `b = k'/p_Q` while
    /// the wrapper clamps whatever the policy still gets wrong.
    fn on_budget_shrunk(&mut self, _new_k: usize) {}

    /// Number of grants this policy degraded (clamped, backed off, or
    /// converted to stalls) to stay within a shrunken budget. Policies
    /// without a degraded mode report 0; the engine copies this into
    /// `RunResult::degraded_grants`.
    fn degraded_grants(&self) -> u64 {
        0
    }

    /// Serializes the policy's full dynamic state into `w` so a run can be
    /// snapshotted and resumed byte-identically (see
    /// `parapage-sched`'s `EngineSnapshot`). Canonical encoding: equal
    /// states must write equal bytes. The default refuses with
    /// [`CodecError::Unsupported`]; every shipped policy overrides it.
    fn checkpoint(&self, _w: &mut SnapWriter) -> Result<(), CodecError> {
        Err(CodecError::Unsupported(self.name()))
    }

    /// Replaces the policy's dynamic state with one previously written by
    /// [`BoxAllocator::checkpoint`]. The receiver must have been
    /// constructed with the same parameters (and, for randomized policies,
    /// any seed — the saved RNG state replaces it). After a successful
    /// restore the policy must behave byte-identically to the saved one.
    fn restore(&mut self, _r: &mut SnapReader<'_>) -> Result<(), CodecError> {
        Err(CodecError::Unsupported(self.name()))
    }

    /// Short policy name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_grant_has_zero_height() {
        let g = Grant::stall(10);
        assert_eq!(g.height, 0);
        assert_eq!(g.duration, 10);
    }
}
