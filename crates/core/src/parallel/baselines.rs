//! Baseline parallel pagers: the comparators RAND-PAR and DET-PAR are
//! measured against in E8.

use parapage_cache::{CodecError, ProcId, SnapReader, SnapWriter, Time, WindowOutcome};

use crate::config::ModelParams;
use crate::parallel::{BoxAllocator, Grant};

/// Static equal partition: every processor gets `k/p` pages forever.
///
/// This is the natural "fair share" strawman. It is oblivious and uses
/// exactly `k` memory, but its competitive ratio is unbounded in `k/p`: a
/// single processor cycling over `k` pages misses everything while the other
/// partitions idle.
#[derive(Clone, Debug)]
pub struct StaticPartition {
    height: usize,
    quantum: Time,
}

impl StaticPartition {
    /// Equal partition of `params.k` over `params.p` processors.
    pub fn new(params: &ModelParams) -> Self {
        let height = params.min_height();
        StaticPartition {
            height,
            quantum: params.s * height as u64,
        }
    }
}

impl BoxAllocator for StaticPartition {
    fn grant(&mut self, _proc: ProcId, _now: Time) -> Grant {
        Grant {
            height: self.height,
            duration: self.quantum,
        }
    }

    fn on_proc_finished(&mut self, _proc: ProcId, _now: Time) {}

    fn checkpoint(&self, _w: &mut SnapWriter) -> Result<(), CodecError> {
        // Stateless: the grant is a pure function of the construction
        // parameters, so the snapshot is empty.
        Ok(())
    }

    fn restore(&mut self, _r: &mut SnapReader<'_>) -> Result<(), CodecError> {
        Ok(())
    }

    fn oblivious(&self) -> bool {
        // Pure function of (k, p, proc): never reads observe feedback.
        true
    }

    fn name(&self) -> &'static str {
        "STATIC-EQUAL"
    }
}

/// Adaptive partition proportional to recent miss counts.
///
/// Every epoch of length `epoch` the cache is re-divided: processor `i`
/// receives `max(1, k·mᵢ/Σm)` pages where `mᵢ` is its miss count in the
/// previous epoch (equal shares when no misses were observed). This is the
/// classic feedback heuristic real systems use; it is *not* oblivious and
/// the paper's adversarial analysis does not protect it.
#[derive(Clone, Debug)]
pub struct PropMissPartition {
    k: usize,
    epoch: Time,
    epoch_end: Time,
    alloc: Vec<usize>,
    misses: Vec<u64>,
    active: Vec<bool>,
}

impl PropMissPartition {
    /// Creates the policy with the default epoch `s·k`.
    pub fn new(params: &ModelParams) -> Self {
        Self::with_epoch(params, params.s * params.k as u64)
    }

    /// Creates the policy with an explicit epoch length.
    pub fn with_epoch(params: &ModelParams, epoch: Time) -> Self {
        assert!(epoch >= 1);
        let share = params.min_height();
        PropMissPartition {
            k: params.k,
            epoch,
            epoch_end: epoch,
            alloc: vec![share; params.p],
            misses: vec![0; params.p],
            active: vec![true; params.p],
        }
    }

    fn reallocate(&mut self) {
        let live: Vec<usize> = (0..self.alloc.len()).filter(|&i| self.active[i]).collect();
        if live.is_empty() {
            return;
        }
        let total: u64 = live.iter().map(|&i| self.misses[i]).sum();
        if total == 0 {
            let share = (self.k / live.len()).max(1);
            for &i in &live {
                self.alloc[i] = share;
            }
        } else {
            // Proportional shares, each at least one page; rounding may
            // leave a few pages unused, never oversubscribe beyond k + p.
            for &i in &live {
                let share = (self.k as u128 * self.misses[i] as u128 / total as u128) as usize;
                self.alloc[i] = share.max(1);
            }
        }
        for m in &mut self.misses {
            *m = 0;
        }
    }
}

impl BoxAllocator for PropMissPartition {
    fn grant(&mut self, proc: ProcId, now: Time) -> Grant {
        while now >= self.epoch_end {
            self.reallocate();
            self.epoch_end += self.epoch;
        }
        Grant {
            height: self.alloc[proc.idx()],
            duration: self.epoch_end - now,
        }
    }

    fn on_proc_finished(&mut self, proc: ProcId, _now: Time) {
        self.active[proc.idx()] = false;
    }

    fn observe(&mut self, proc: ProcId, outcome: &WindowOutcome) {
        self.misses[proc.idx()] += outcome.stats.misses;
    }

    fn checkpoint(&self, w: &mut SnapWriter) -> Result<(), CodecError> {
        w.put_u64(self.epoch_end);
        w.put_len(self.alloc.len());
        for &a in &self.alloc {
            w.put_usize(a);
        }
        for &m in &self.misses {
            w.put_u64(m);
        }
        for &a in &self.active {
            w.put_bool(a);
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), CodecError> {
        let epoch_end = r.get_u64()?;
        let p = r.get_len()?;
        if p != self.alloc.len() {
            return Err(CodecError::Invalid("PROP-MISS processor count mismatch"));
        }
        let mut alloc = Vec::with_capacity(p);
        for _ in 0..p {
            alloc.push(r.get_usize()?);
        }
        let mut misses = Vec::with_capacity(p);
        for _ in 0..p {
            misses.push(r.get_u64()?);
        }
        let mut active = Vec::with_capacity(p);
        for _ in 0..p {
            active.push(r.get_bool()?);
        }
        self.epoch_end = epoch_end;
        self.alloc = alloc;
        self.misses = misses;
        self.active = active;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "PROP-MISS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams::new(4, 32, 10)
    }

    #[test]
    fn static_partition_grants_equal_shares() {
        let mut sp = StaticPartition::new(&params());
        let g = sp.grant(ProcId(0), 0);
        assert_eq!(g.height, 8);
        assert_eq!(g.duration, 80);
        // Same grant for everyone, forever.
        assert_eq!(sp.grant(ProcId(3), 12345), g);
    }

    #[test]
    fn prop_miss_starts_equal_then_follows_misses() {
        let p = params();
        let mut pm = PropMissPartition::with_epoch(&p, 100);
        assert_eq!(pm.grant(ProcId(0), 0).height, 8);
        // Proc 0 misses a lot, others not at all.
        pm.observe(
            ProcId(0),
            &WindowOutcome {
                end_index: 10,
                stats: parapage_cache::CacheStats {
                    hits: 0,
                    misses: 10,
                },
                time_used: 100,
                finished: false,
            },
        );
        // Next epoch: proc 0 gets (almost) everything, others min share.
        let g0 = pm.grant(ProcId(0), 100);
        let g1 = pm.grant(ProcId(1), 100);
        assert_eq!(g0.height, 32);
        assert_eq!(g1.height, 1);
    }

    #[test]
    fn prop_miss_grants_end_at_epoch_boundary() {
        let p = params();
        let mut pm = PropMissPartition::with_epoch(&p, 100);
        let g = pm.grant(ProcId(0), 30);
        assert_eq!(g.duration, 70);
    }

    #[test]
    fn prop_miss_checkpoint_round_trips_mid_epoch() {
        let p = params();
        let mut pm = PropMissPartition::with_epoch(&p, 100);
        pm.grant(ProcId(0), 0);
        pm.observe(
            ProcId(2),
            &WindowOutcome {
                end_index: 5,
                stats: parapage_cache::CacheStats { hits: 1, misses: 7 },
                time_used: 80,
                finished: false,
            },
        );
        pm.on_proc_finished(ProcId(1), 90);
        let mut w = SnapWriter::new();
        pm.checkpoint(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut restored = PropMissPartition::with_epoch(&p, 100);
        restored.restore(&mut SnapReader::new(&bytes)).unwrap();
        for t in [100u64, 150, 200] {
            for x in [0u32, 2, 3] {
                assert_eq!(restored.grant(ProcId(x), t), pm.grant(ProcId(x), t));
            }
        }
    }

    #[test]
    fn prop_miss_reassigns_shares_of_finished_procs() {
        let p = params();
        let mut pm = PropMissPartition::with_epoch(&p, 100);
        for i in 0..3 {
            pm.on_proc_finished(ProcId(i), 50);
        }
        let g = pm.grant(ProcId(3), 100);
        assert_eq!(g.height, 32); // sole survivor gets the whole cache
    }
}

/// SRPT-flavoured partition: the whole cache goes to the processor with the
/// least *remaining* work; everyone else gets one page.
///
/// Shortest-Remaining-Processing-Time is the classic mean-completion-time
/// heuristic; it needs to know sequence lengths (semi-offline — constructed
/// with them) and tracks progress via the engine's access feedback. A
/// makespan disaster by design (the longest job starves until the end), it
/// brackets DET-PAR's mean-completion results from the other side in E6.
#[derive(Clone, Debug)]
pub struct SrptPartition {
    k: usize,
    s: u64,
    remaining: Vec<u64>,
    active: Vec<bool>,
}

impl SrptPartition {
    /// Creates the policy from the known sequence lengths.
    pub fn new(params: &ModelParams, lengths: &[usize]) -> Self {
        assert_eq!(lengths.len(), params.p);
        SrptPartition {
            k: params.k,
            s: params.s,
            remaining: lengths.iter().map(|&n| n as u64).collect(),
            active: vec![true; params.p],
        }
    }

    fn favourite(&self) -> Option<usize> {
        (0..self.remaining.len())
            .filter(|&i| self.active[i])
            .min_by_key(|&i| self.remaining[i])
    }
}

impl BoxAllocator for SrptPartition {
    fn grant(&mut self, proc: ProcId, _now: Time) -> Grant {
        let fav = self.favourite();
        let x = proc.idx();
        let height = if Some(x) == fav {
            self.k - (self.remaining.len() - 1)
        } else {
            1
        };
        Grant {
            height,
            // Short leases so leadership can change hands quickly.
            duration: self.s * (self.k as u64 / 4).max(1),
        }
    }

    fn on_proc_finished(&mut self, proc: ProcId, _now: Time) {
        self.active[proc.idx()] = false;
    }

    fn observe(&mut self, proc: ProcId, outcome: &WindowOutcome) {
        let served = outcome.stats.accesses();
        let r = &mut self.remaining[proc.idx()];
        *r = r.saturating_sub(served);
    }

    fn checkpoint(&self, w: &mut SnapWriter) -> Result<(), CodecError> {
        w.put_len(self.remaining.len());
        for &rem in &self.remaining {
            w.put_u64(rem);
        }
        for &a in &self.active {
            w.put_bool(a);
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), CodecError> {
        let p = r.get_len()?;
        if p != self.remaining.len() {
            return Err(CodecError::Invalid("SRPT processor count mismatch"));
        }
        let mut remaining = Vec::with_capacity(p);
        for _ in 0..p {
            remaining.push(r.get_u64()?);
        }
        let mut active = Vec::with_capacity(p);
        for _ in 0..p {
            active.push(r.get_bool()?);
        }
        self.remaining = remaining;
        self.active = active;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "SRPT"
    }
}

#[cfg(test)]
mod srpt_tests {
    use super::*;
    use parapage_cache::CacheStats;

    #[test]
    fn favours_the_shortest_remaining_job() {
        let p = ModelParams::new(4, 32, 10);
        let mut srpt = SrptPartition::new(&p, &[100, 10, 50, 80]);
        assert_eq!(srpt.grant(ProcId(1), 0).height, 32 - 3);
        assert_eq!(srpt.grant(ProcId(0), 0).height, 1);
    }

    #[test]
    fn leadership_moves_as_work_completes() {
        let p = ModelParams::new(2, 16, 10);
        let mut srpt = SrptPartition::new(&p, &[30, 40]);
        assert_eq!(srpt.grant(ProcId(0), 0).height, 15);
        // Proc 0 serves 30 requests -> finished; proc 1 takes over.
        srpt.observe(
            ProcId(0),
            &WindowOutcome {
                end_index: 30,
                stats: CacheStats {
                    hits: 25,
                    misses: 5,
                },
                time_used: 75,
                finished: true,
            },
        );
        srpt.on_proc_finished(ProcId(0), 75);
        assert_eq!(srpt.grant(ProcId(1), 80).height, 15);
    }
}
