//! Degraded-mode hardening for arbitrary parallel pagers.
//!
//! [`HardenedAllocator`] wraps any [`BoxAllocator`] and guarantees that the
//! heights it emits never oversubscribe a (possibly shrinking) global
//! budget. The paper's policies are analyzed against a fixed cache of `k`
//! pages; under an injected [`FaultEvent::MemoryPressure`] the budget drops
//! to `k' < k` and an unhardened policy — DET-PAR's well-rounded schedule,
//! RAND-GREEN's sampled box heights — will keep allocating against `k` and
//! trip the engine's limit enforcement. The wrapper instead:
//!
//! 1. **clamps** every inner grant's height to the current budget (this is
//!    what bounds RAND-GREEN-sampled boxes arriving via RAND-PAR or the
//!    black-box packer);
//! 2. **backs off exponentially** when the clamped height still does not
//!    fit next to the wrapper's outstanding grants: `h, h/2, h/4, … , 1`;
//! 3. **stalls** the processor until the next outstanding grant expires
//!    when not even a single page fits.
//!
//! On pressure the wrapper also calls the inner policy's
//! [`BoxAllocator::on_budget_shrunk`] hook, so policies with their own
//! degraded path (DET-PAR rescales its base height to `b = k'/p_Q`) adapt
//! *and* stay safe: the wrapper is the enforcement backstop, the inner
//! reaction is the performance recovery. All other fault notifications are
//! forwarded unchanged via [`BoxAllocator::on_fault`].
//!
//! ### Accounting is conservative
//!
//! The wrapper releases a grant's pages at the grant's scheduled end, while
//! the engine reclaims early when a processor finishes mid-grant. The
//! wrapper's view of usage therefore never undercounts the engine's, which
//! is what makes the guarantee sound: if the wrapper's ledger fits the
//! budget, the engine's enforcement can never fire.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use parapage_cache::{CodecError, PageId, ProcId, SnapReader, SnapWriter, Time, WindowOutcome};

use crate::parallel::{BoxAllocator, FaultEvent, Grant};

/// Wraps a policy so its grants never exceed a (shrinkable) memory budget.
///
/// ```
/// use parapage_core::{BoxAllocator, DetPar, FaultEvent, ModelParams};
/// use parapage_core::parallel::hardened::HardenedAllocator;
/// use parapage_cache::ProcId;
///
/// let params = ModelParams::new(8, 64, 10);
/// let mut hard = HardenedAllocator::new(DetPar::new(&params), params.k);
/// hard.on_fault(&FaultEvent::MemoryPressure { at: 0, new_limit: 16 });
/// let g = hard.grant(ProcId(0), 0);
/// assert!(g.height <= 16);
/// ```
pub struct HardenedAllocator<A> {
    inner: A,
    budget: usize,
    used: usize,
    /// Outstanding grants as `(scheduled end, height)`, a min-heap.
    outstanding: BinaryHeap<Reverse<(Time, usize)>>,
    degraded: u64,
}

impl<A: BoxAllocator> HardenedAllocator<A> {
    /// Hardens `inner` against the initial budget (usually `k`).
    pub fn new(inner: A, budget: usize) -> Self {
        HardenedAllocator {
            inner,
            budget: budget.max(1),
            used: 0,
            outstanding: BinaryHeap::new(),
            degraded: 0,
        }
    }

    /// The budget grants are currently clamped to.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Unwraps the inner policy.
    pub fn into_inner(self) -> A {
        self.inner
    }

    fn release_expired(&mut self, now: Time) {
        while let Some(&Reverse((t, h))) = self.outstanding.peek() {
            if t <= now {
                self.outstanding.pop();
                self.used -= h;
            } else {
                break;
            }
        }
    }
}

impl<A: BoxAllocator> BoxAllocator for HardenedAllocator<A> {
    fn grant(&mut self, proc: ProcId, now: Time) -> Grant {
        self.release_expired(now);
        let wanted = self.inner.grant(proc, now);
        if wanted.height == 0 {
            return wanted;
        }
        // Clamp to the budget, then back off exponentially until the grant
        // fits beside the outstanding ones.
        let mut h = wanted.height.min(self.budget);
        while h > 1 && self.used + h > self.budget {
            h /= 2;
        }
        if self.used + h > self.budget {
            // Not even one page fits: stall until the earliest outstanding
            // grant releases its pages (all outstanding ends are > now
            // after release_expired, so the stall makes progress).
            self.degraded += 1;
            let wake = self
                .outstanding
                .peek()
                .map(|&Reverse((t, _))| t)
                .unwrap_or_else(|| now.saturating_add(wanted.duration));
            let duration = wake.saturating_sub(now).max(1);
            return Grant::stall(duration);
        }
        if h != wanted.height {
            self.degraded += 1;
        }
        self.used += h;
        self.outstanding
            .push(Reverse((now.saturating_add(wanted.duration), h)));
        Grant {
            height: h,
            duration: wanted.duration,
        }
    }

    fn on_proc_finished(&mut self, proc: ProcId, now: Time) {
        self.inner.on_proc_finished(proc, now);
    }

    fn observe(&mut self, proc: ProcId, outcome: &WindowOutcome) {
        self.inner.observe(proc, outcome);
    }

    fn observe_accesses(&mut self, proc: ProcId, served: &[PageId]) {
        self.inner.observe_accesses(proc, served);
    }

    fn on_fault(&mut self, event: &FaultEvent) {
        if let FaultEvent::MemoryPressure { new_limit, .. } = *event {
            // Budgets only tighten, mirroring the engine's enforcement
            // (which takes the running minimum over pressure events): a
            // later event with a larger limit must not let the wrapper
            // allocate above the engine's enforced floor.
            self.budget = self.budget.min(new_limit.max(1));
            // Ask the policy to reshape future grants to the tightened
            // budget (DET-PAR rescales b = k'/p_Q; policies without a
            // degraded path ignore this and rely on the clamp above).
            self.inner.on_budget_shrunk(self.budget);
        }
        self.inner.on_fault(event);
    }

    fn degraded_grants(&self) -> u64 {
        self.degraded + self.inner.degraded_grants()
    }

    fn checkpoint(&self, w: &mut SnapWriter) -> Result<(), CodecError> {
        w.put_usize(self.budget);
        w.put_u64(self.degraded);
        // Canonical order: the heap's internal layout is
        // insertion-dependent, so serialize sorted.
        let mut entries: Vec<(Time, usize)> =
            self.outstanding.iter().map(|&Reverse(e)| e).collect();
        entries.sort_unstable();
        w.put_len(entries.len());
        for (t, h) in entries {
            w.put_u64(t);
            w.put_usize(h);
        }
        self.inner.checkpoint(w)
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), CodecError> {
        let budget = r.get_usize()?;
        let degraded = r.get_u64()?;
        let n = r.get_len()?;
        let mut outstanding = BinaryHeap::with_capacity(n);
        let mut used = 0usize;
        for _ in 0..n {
            let t = r.get_u64()?;
            let h = r.get_usize()?;
            used = used
                .checked_add(h)
                .ok_or(CodecError::Invalid("hardened outstanding overflow"))?;
            outstanding.push(Reverse((t, h)));
        }
        // Note: `used` may legitimately exceed `budget` — grants issued
        // before a pressure event stay on the ledger after it shrinks.
        self.inner.restore(r)?;
        self.budget = budget;
        self.used = used;
        self.outstanding = outstanding;
        self.degraded = degraded;
        Ok(())
    }

    fn oblivious(&self) -> bool {
        // The wrapper's own state (budget ledger) evolves only through
        // grant/on_fault, so batch-safety is exactly the inner policy's.
        self.inner.oblivious()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelParams;
    use crate::parallel::baselines::StaticPartition;
    use crate::parallel::det_par::DetPar;

    /// Grants a fixed tall box forever.
    struct Tall(usize);
    impl BoxAllocator for Tall {
        fn grant(&mut self, _proc: ProcId, _now: Time) -> Grant {
            Grant {
                height: self.0,
                duration: 10,
            }
        }
        fn on_proc_finished(&mut self, _proc: ProcId, _now: Time) {}
        fn name(&self) -> &'static str {
            "tall"
        }
    }

    #[test]
    fn clamps_to_initial_budget() {
        let mut hard = HardenedAllocator::new(Tall(100), 16);
        let g = hard.grant(ProcId(0), 0);
        assert_eq!(g.height, 16);
        assert_eq!(hard.degraded_grants(), 1);
    }

    #[test]
    fn pressure_event_shrinks_budget() {
        let mut hard = HardenedAllocator::new(Tall(100), 64);
        assert_eq!(hard.grant(ProcId(0), 0).height, 64);
        hard.on_fault(&FaultEvent::MemoryPressure {
            at: 5,
            new_limit: 8,
        });
        assert_eq!(hard.budget(), 8);
        // t=10: the first grant has expired; the next is clamped to 8.
        assert_eq!(hard.grant(ProcId(0), 10).height, 8);
    }

    #[test]
    fn backoff_halves_until_fit() {
        let mut hard = HardenedAllocator::new(Tall(16), 20);
        assert_eq!(hard.grant(ProcId(0), 0).height, 16);
        // 4 pages left: 16 → 8 → 4 fits.
        assert_eq!(hard.grant(ProcId(1), 0).height, 4);
        // Budget exhausted by 16+4: not even 1 page → stall until t=10.
        let g = hard.grant(ProcId(2), 1);
        assert_eq!(g.height, 0);
        assert_eq!(g.duration, 9);
    }

    #[test]
    fn concurrent_usage_never_exceeds_budget() {
        let budget = 24;
        let mut hard = HardenedAllocator::new(Tall(16), budget);
        for t in 0..200u64 {
            let _ = hard.grant(ProcId((t % 4) as u32), t);
            assert!(hard.used <= budget, "used {} at t={t}", hard.used);
        }
    }

    #[test]
    fn budget_only_tightens() {
        let mut hard = HardenedAllocator::new(Tall(4), 32);
        hard.on_fault(&FaultEvent::MemoryPressure {
            at: 0,
            new_limit: 8,
        });
        hard.on_fault(&FaultEvent::MemoryPressure {
            at: 1,
            new_limit: 16,
        });
        assert_eq!(hard.budget(), 8);
    }

    #[test]
    fn non_pressure_faults_leave_budget_alone() {
        let mut hard = HardenedAllocator::new(Tall(4), 32);
        hard.on_fault(&FaultEvent::LatencySpike {
            from: 0,
            until: 10,
            factor: 4,
        });
        assert_eq!(hard.budget(), 32);
    }

    #[test]
    fn forwards_name_and_finish() {
        let params = ModelParams::new(2, 8, 10);
        let mut hard = HardenedAllocator::new(StaticPartition::new(&params), params.k);
        assert_eq!(hard.name(), "STATIC-EQUAL");
        hard.on_proc_finished(ProcId(0), 3);
        let g = hard.grant(ProcId(1), 3);
        assert!(g.duration >= 1);
    }

    #[test]
    fn checkpoint_round_trips_ledger_and_inner() {
        let params = ModelParams::new(8, 64, 10);
        let mut hard = HardenedAllocator::new(DetPar::new(&params), params.k);
        hard.grant(ProcId(0), 0);
        hard.grant(ProcId(1), 0);
        hard.on_fault(&FaultEvent::MemoryPressure {
            at: 5,
            new_limit: 32,
        });
        hard.grant(ProcId(2), 6);
        let mut w = parapage_cache::SnapWriter::new();
        hard.checkpoint(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut restored = HardenedAllocator::new(DetPar::new(&params), params.k);
        restored
            .restore(&mut parapage_cache::SnapReader::new(&bytes))
            .unwrap();
        assert_eq!(restored.budget(), hard.budget());
        assert_eq!(restored.used, hard.used);
        assert_eq!(restored.degraded_grants(), hard.degraded_grants());
        for t in [10u64, 200, 400] {
            for x in 3..8 {
                assert_eq!(restored.grant(ProcId(x), t), hard.grant(ProcId(x), t));
            }
        }
    }

    #[test]
    fn det_par_under_pressure_rescales_and_fits() {
        let params = ModelParams::new(8, 64, 10);
        let mut hard = HardenedAllocator::new(DetPar::new(&params), params.k);
        hard.on_fault(&FaultEvent::MemoryPressure {
            at: 0,
            new_limit: 16,
        });
        // The inner DET-PAR rescaled b = k'/p_Q; the wrapper clamps any
        // leftover tall boxes. Either way no grant exceeds 16.
        for x in 0..8 {
            let g = hard.grant(ProcId(x), 0);
            assert!(g.height <= 16, "height {} exceeds budget", g.height);
        }
    }
}
