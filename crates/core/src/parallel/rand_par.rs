//! RAND-PAR (paper §3.2): the randomized `O(log p)`-competitive parallel
//! pager.
//!
//! Execution is divided into **chunks**. At the start of a chunk with `r`
//! active processors:
//!
//! * the **primary part** gives every active processor `Θ(log r)` boxes of
//!   the minimum height `k/r` (length `ℓ₁ = Θ(s·k·log r / r)`);
//! * the **secondary part** samples one height `j` from the RAND-GREEN
//!   distribution (`Pr[j] ∝ j⁻²`) and gives every active processor one box
//!   of height `j`, packed `⌊k/j⌋` processors at a time (length
//!   `ℓ₂ = Θ(s·r·j²/k)`).
//!
//! The two parts have equal expected length and memory impact
//! (Observation 1), so whichever part a chunk "wastes" is amortized against
//! the useful one. Phases — periods over which the active count halves —
//! emerge implicitly; the policy only ever reads the active count, never the
//! request sequences (it is *oblivious*).

use rand::rngs::StdRng;
use rand::SeedableRng;

use parapage_cache::{CodecError, ProcId, SnapReader, SnapWriter, Time};

use crate::config::{log2_ceil, ModelParams};
use crate::distribution::BoxHeightDist;
use crate::parallel::{BoxAllocator, Grant};

/// Tunables for RAND-PAR (every `Θ(·)` constant of §3.2, exposed for the
/// E9 ablations).
#[derive(Clone, Copy, Debug)]
pub struct RandParConfig {
    /// Multiplier on the number of primary-part minimum boxes
    /// (`n_primary = primary_factor · log₂ r`). Paper: `Θ(1)`, default 1.
    pub primary_factor: usize,
    /// Exponent of the box-height distribution (`Pr[j] ∝ j^(-exponent)`).
    /// Paper: 2.
    pub exponent: f64,
}

impl Default for RandParConfig {
    fn default() -> Self {
        RandParConfig {
            primary_factor: 1,
            exponent: 2.0,
        }
    }
}

/// A log entry describing one executed chunk (used by experiment E10).
#[derive(Clone, Copy, Debug)]
pub struct ChunkRecord {
    /// Chunk start time.
    pub start: Time,
    /// Active processors at chunk start.
    pub r: usize,
    /// Sampled secondary box height.
    pub j: usize,
    /// Length of the primary part.
    pub primary_len: Time,
    /// Length of the secondary part.
    pub secondary_len: Time,
    /// Memory impact of the primary part (`r · h_min · ℓ₁`).
    pub primary_impact: u128,
    /// Memory impact of the secondary part (`r · s · j²`).
    pub secondary_impact: u128,
}

/// The paper's randomized online parallel pager.
///
/// ```
/// use parapage_core::{BoxAllocator, RandPar, ModelParams};
/// use parapage_cache::ProcId;
///
/// let params = ModelParams::new(4, 32, 10);
/// let mut rp = RandPar::new(&params, 42);
/// // The first grant opens a chunk: every active processor gets the
/// // minimum height k/r = 8 during the primary part.
/// assert_eq!(rp.grant(ProcId(0), 0).height, 8);
/// assert_eq!(rp.chunks().len(), 1);
/// ```
pub struct RandPar {
    params: ModelParams,
    cfg: RandParConfig,
    rng: StdRng,
    active: Vec<bool>,
    active_count: usize,
    chunk_end: Time,
    sched: ChunkSchedule,
    chunks: Vec<ChunkRecord>,
}

/// Sentinel batch index for processors that were inactive when the current
/// chunk was built.
const NO_BATCH: u64 = u64::MAX;

/// The time-anchored schedule of the current chunk.
///
/// Grants are *looked up* from absolute time rather than popped from
/// per-processor queues: a processor asking at time `now` receives whatever
/// the chunk schedule prescribes for offset `now - start`, clipped to the
/// next schedule boundary. A processor frozen by a `ProcStall` therefore
/// re-joins the chunk mid-schedule instead of replaying a time-shifted
/// queue, so box generations from adjacent chunks can no longer overlap
/// (the PR-2 stall-desync finding) and no grant ever extends past
/// `chunk_end`.
#[derive(Clone, Debug, Default)]
struct ChunkSchedule {
    start: Time,
    h_min: usize,
    /// Duration of one primary box (`s · h_min`).
    primary_box_len: Time,
    /// Total length of the primary part.
    primary_len: Time,
    /// Sampled secondary height.
    j: usize,
    /// Duration of one secondary box (`s · j`).
    sec_box_len: Time,
    /// Per-processor secondary batch index ([`NO_BATCH`] when the
    /// processor was inactive at chunk construction).
    batch_of: Vec<u64>,
}

impl RandPar {
    /// Creates RAND-PAR with the paper's default constants.
    pub fn new(params: &ModelParams, seed: u64) -> Self {
        Self::with_config(params, RandParConfig::default(), seed)
    }

    /// Creates RAND-PAR with explicit constants (ablations).
    pub fn with_config(params: &ModelParams, cfg: RandParConfig, seed: u64) -> Self {
        assert!(cfg.primary_factor >= 1);
        let params = params.normalized_k();
        RandPar {
            params,
            cfg,
            rng: StdRng::seed_from_u64(seed),
            active: vec![true; params.p],
            active_count: params.p,
            chunk_end: 0,
            sched: ChunkSchedule::default(),
            chunks: Vec::new(),
        }
    }

    /// The chunk log accumulated so far.
    pub fn chunks(&self) -> &[ChunkRecord] {
        &self.chunks
    }

    /// Builds the time-anchored schedule of one chunk starting at `now`.
    fn build_chunk(&mut self, now: Time) {
        let k = self.params.k;
        let s = self.params.s;
        let r = self.active_count.max(1);
        let r_pow = r.next_power_of_two();
        let h_min = (k / r_pow).max(1);
        // Height menu {h_min · 2^i} up to k.
        let mut heights = Vec::new();
        let mut h = h_min;
        while h <= k {
            heights.push(h);
            if h == k {
                break;
            }
            h *= 2;
        }
        let weights: Vec<f64> = heights
            .iter()
            .map(|&j| (j as f64).powf(-self.cfg.exponent))
            .collect();
        let dist = BoxHeightDist::from_weights(heights, &weights);
        let j = dist.sample(&mut self.rng);

        let n_primary = (log2_ceil(r_pow) as usize).max(1) * self.cfg.primary_factor;
        let primary_box = Grant {
            height: h_min,
            duration: s * h_min as u64,
        };
        let primary_len = primary_box.duration * n_primary as u64;

        let batch_size = (k / j).max(1);
        let batches = r.div_ceil(batch_size);
        let sec_box_len = s * j as u64;
        let secondary_len = sec_box_len * batches as u64;

        let mut live_rank = 0usize;
        let mut batch_of = vec![NO_BATCH; self.params.p];
        for (slot, &active) in batch_of.iter_mut().zip(self.active.iter()) {
            if !active {
                continue;
            }
            *slot = (live_rank / batch_size) as u64;
            live_rank += 1;
        }
        self.sched = ChunkSchedule {
            start: now,
            h_min,
            primary_box_len: primary_box.duration,
            primary_len,
            j,
            sec_box_len,
            batch_of,
        };
        self.chunk_end = now + primary_len + secondary_len;
        self.chunks.push(ChunkRecord {
            start: now,
            r,
            j,
            primary_len,
            secondary_len,
            primary_impact: r as u128 * h_min as u128 * primary_len as u128,
            secondary_impact: r as u128 * s as u128 * (j as u128) * (j as u128),
        });
    }
}

impl BoxAllocator for RandPar {
    fn grant(&mut self, proc: ProcId, now: Time) -> Grant {
        if now >= self.chunk_end {
            self.build_chunk(now);
        }
        let sched = &self.sched;
        let tau = now - sched.start;
        let to_chunk_end = (self.chunk_end - now).max(1);
        let batch = sched.batch_of[proc.idx()];
        if batch == NO_BATCH {
            // The processor was inactive when this chunk was built (it can
            // only reach here defensively — finished processors get no
            // grant requests): park it until the next chunk.
            return Grant::stall(to_chunk_end);
        }
        if tau < sched.primary_len {
            // Primary part: minimum boxes on the s·h_min grid. A processor
            // re-joining mid-box (after an injected stall) gets the
            // remainder of the current grid box, so it re-anchors to the
            // chunk instead of sliding a private copy of the schedule.
            let off = tau % sched.primary_box_len;
            return Grant {
                height: sched.h_min,
                duration: sched.primary_box_len - off,
            };
        }
        let sec_tau = tau - sched.primary_len;
        let window_start = batch * sched.sec_box_len;
        let window_end = window_start + sched.sec_box_len;
        if sec_tau < window_start {
            // Waiting for this processor's secondary batch.
            Grant::stall(window_start - sec_tau)
        } else if sec_tau < window_end {
            // Inside its own batch window: the sampled height-j box (its
            // remainder when re-joining mid-window).
            Grant {
                height: sched.j,
                duration: window_end - sec_tau,
            }
        } else {
            // Batch already over: wait out the chunk.
            Grant::stall(to_chunk_end)
        }
    }

    fn on_proc_finished(&mut self, proc: ProcId, _now: Time) {
        if self.active[proc.idx()] {
            self.active[proc.idx()] = false;
            self.active_count -= 1;
        }
    }

    fn checkpoint(&self, w: &mut SnapWriter) -> Result<(), CodecError> {
        w.put_u64(self.rng.state()[0]);
        w.put_u64(self.rng.state()[1]);
        w.put_u64(self.rng.state()[2]);
        w.put_u64(self.rng.state()[3]);
        w.put_len(self.active.len());
        for &a in &self.active {
            w.put_bool(a);
        }
        w.put_u64(self.chunk_end);
        let s = &self.sched;
        w.put_u64(s.start);
        w.put_usize(s.h_min);
        w.put_u64(s.primary_box_len);
        w.put_u64(s.primary_len);
        w.put_usize(s.j);
        w.put_u64(s.sec_box_len);
        w.put_len(s.batch_of.len());
        for &b in &s.batch_of {
            w.put_u64(b);
        }
        // The chunk log is diagnostic, but resumed runs must keep emitting
        // identical records, so it travels too.
        w.put_len(self.chunks.len());
        for c in &self.chunks {
            w.put_u64(c.start);
            w.put_usize(c.r);
            w.put_usize(c.j);
            w.put_u64(c.primary_len);
            w.put_u64(c.secondary_len);
            w.put_u128(c.primary_impact);
            w.put_u128(c.secondary_impact);
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), CodecError> {
        let rng_state = [r.get_u64()?, r.get_u64()?, r.get_u64()?, r.get_u64()?];
        let n = r.get_len()?;
        if n != self.params.p {
            return Err(CodecError::Invalid("RAND-PAR active vector length"));
        }
        let mut active = Vec::with_capacity(n);
        for _ in 0..n {
            active.push(r.get_bool()?);
        }
        let chunk_end = r.get_u64()?;
        let start = r.get_u64()?;
        let h_min = r.get_usize()?;
        let primary_box_len = r.get_u64()?;
        let primary_len = r.get_u64()?;
        let j = r.get_usize()?;
        let sec_box_len = r.get_u64()?;
        let bn = r.get_len()?;
        if bn != self.params.p {
            return Err(CodecError::Invalid("RAND-PAR batch vector length"));
        }
        let mut batch_of = Vec::with_capacity(bn);
        for _ in 0..bn {
            batch_of.push(r.get_u64()?);
        }
        let cn = r.get_len()?;
        let mut chunks = Vec::with_capacity(cn);
        for _ in 0..cn {
            chunks.push(ChunkRecord {
                start: r.get_u64()?,
                r: r.get_usize()?,
                j: r.get_usize()?,
                primary_len: r.get_u64()?,
                secondary_len: r.get_u64()?,
                primary_impact: r.get_u128()?,
                secondary_impact: r.get_u128()?,
            });
        }
        self.rng = StdRng::from_state(rng_state);
        self.active_count = active.iter().filter(|&&a| a).count();
        self.active = active;
        self.chunk_end = chunk_end;
        self.sched = ChunkSchedule {
            start,
            h_min,
            primary_box_len,
            primary_len,
            j,
            sec_box_len,
            batch_of,
        };
        self.chunks = chunks;
        Ok(())
    }

    fn oblivious(&self) -> bool {
        // Randomized but still oblivious: coin flips come from the policy's
        // own RNG stream, never from hit/miss feedback.
        true
    }

    fn name(&self) -> &'static str {
        "RAND-PAR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams::new(4, 32, 10)
    }

    #[test]
    fn chunk_grants_tile_the_chunk_for_every_processor() {
        let p = params();
        let mut rp = RandPar::new(&p, 1);
        // Trigger chunk construction.
        let mut times = vec![0u64; p.p];
        let mut heights_seen = vec![Vec::new(); p.p];
        // Drive all processors through one chunk in lockstep-ish order.
        let mut done = vec![false; p.p];
        while done.iter().any(|&d| !d) {
            // Next processor event = min time.
            let x = (0..p.p)
                .filter(|&i| !done[i])
                .min_by_key(|&i| times[i])
                .unwrap();
            let g = rp.grant(ProcId(x as u32), times[x]);
            heights_seen[x].push(g.height);
            times[x] += g.duration;
            if times[x] >= rp.chunk_end {
                done[x] = true;
            }
        }
        let end = rp.chunk_end;
        for (x, &t) in times.iter().enumerate() {
            assert_eq!(t, end, "proc {x} grants must tile the chunk");
        }
        let rec = rp.chunks()[0];
        assert_eq!(rec.r, 4);
        assert_eq!(rec.primary_len + rec.secondary_len, end - rec.start);
    }

    #[test]
    fn primary_part_gives_min_boxes_log_r_times() {
        let p = params(); // p=4, k=32 -> h_min=8, log2(4)=2 primary boxes
        let mut rp = RandPar::new(&p, 2);
        let g = rp.grant(ProcId(0), 0);
        assert_eq!(g.height, 8);
        assert_eq!(g.duration, 80);
        let rec = rp.chunks()[0];
        assert_eq!(rec.primary_len, 160); // 2 boxes of 80
    }

    #[test]
    fn secondary_box_heights_come_from_the_menu() {
        let p = params();
        let mut rp = RandPar::new(&p, 3);
        for _ in 0..50 {
            rp.build_chunk(rp.chunk_end);
        }
        for rec in rp.chunks() {
            assert!([8, 16, 32].contains(&rec.j), "height {}", rec.j);
        }
    }

    #[test]
    fn concurrent_memory_within_chunk_stays_bounded() {
        // Secondary part packs batch_size = k/j boxes of height j at a time:
        // concurrent secondary memory <= k; primary r * h_min <= k.
        let p = ModelParams::new(8, 64, 10);
        let mut rp = RandPar::new(&p, 5);
        rp.build_chunk(0);
        let rec = rp.chunks()[0];
        let batch = (p.k / rec.j).max(1).min(rec.r);
        assert!(batch * rec.j <= p.k.max(rec.j));
        assert!(rec.r * (p.k / rec.r.next_power_of_two()).max(1) <= p.k);
    }

    #[test]
    fn finished_processors_shrink_r_for_later_chunks() {
        let p = params();
        let mut rp = RandPar::new(&p, 4);
        rp.build_chunk(0);
        rp.on_proc_finished(ProcId(0), 10);
        rp.on_proc_finished(ProcId(1), 10);
        rp.build_chunk(rp.chunk_end);
        let recs = rp.chunks();
        assert_eq!(recs[0].r, 4);
        assert_eq!(recs[1].r, 2);
    }

    #[test]
    fn observation1_equal_expected_lengths() {
        // Across many sampled chunks with fixed r, E[l2] should be within a
        // small constant of l1 (they are designed equal up to rounding).
        let p = ModelParams::new(16, 256, 10);
        let mut rp = RandPar::new(&p, 6);
        let mut sum1 = 0u128;
        let mut sum2 = 0u128;
        for _ in 0..3000 {
            rp.build_chunk(rp.chunk_end);
        }
        for rec in rp.chunks() {
            sum1 += rec.primary_len as u128;
            sum2 += rec.secondary_len as u128;
        }
        let ratio = sum2 as f64 / sum1 as f64;
        assert!(
            (0.25..4.0).contains(&ratio),
            "primary/secondary balance off: {ratio}"
        );
    }
}
