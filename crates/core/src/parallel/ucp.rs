//! Utility-based cache partitioning (UCP — Qureshi & Patt, MICRO 2006),
//! adapted to the paper's model as the strongest practical adaptive
//! baseline.
//!
//! Each processor carries a *shadow monitor*: the page stream it served in
//! the current epoch. At every epoch boundary the policy computes each
//! processor's miss curve over the epoch (one Mattson pass) and partitions
//! the cache greedily by *lookahead marginal utility*: repeatedly give the
//! block of pages with the highest miss-reduction-per-page to whichever
//! processor values it most. Unlike the paper's oblivious algorithms, UCP
//! reads access streams — it represents what a well-engineered system
//! without the paper's theory would deploy, and E8 measures the gap.

use parapage_cache::{
    miss_curve, CodecError, MissCurve, PageId, ProcId, SnapReader, SnapWriter, Time,
};

use crate::config::ModelParams;
use crate::parallel::{BoxAllocator, Grant};

/// The UCP policy.
pub struct UcpPartition {
    k: usize,
    epoch: Time,
    epoch_end: Time,
    alloc: Vec<usize>,
    streams: Vec<Vec<PageId>>,
    active: Vec<bool>,
}

impl UcpPartition {
    /// Creates UCP with the default epoch `s·k`.
    pub fn new(params: &ModelParams) -> Self {
        Self::with_epoch(params, params.s * params.k as u64)
    }

    /// Creates UCP with an explicit epoch length.
    pub fn with_epoch(params: &ModelParams, epoch: Time) -> Self {
        assert!(epoch >= 1);
        UcpPartition {
            k: params.k,
            epoch,
            epoch_end: epoch,
            alloc: vec![params.min_height(); params.p],
            streams: vec![Vec::new(); params.p],
            active: vec![true; params.p],
        }
    }

    /// Current allocation (pages per processor).
    pub fn allocation(&self) -> &[usize] {
        &self.alloc
    }

    /// Greedy lookahead partitioning from the epoch's miss curves.
    fn repartition(&mut self) {
        let live: Vec<usize> = (0..self.alloc.len()).filter(|&i| self.active[i]).collect();
        if live.is_empty() {
            return;
        }
        let curves: Vec<Option<MissCurve>> = (0..self.alloc.len())
            .map(|i| {
                if self.active[i] && !self.streams[i].is_empty() {
                    Some(miss_curve(&self.streams[i], self.k))
                } else {
                    None
                }
            })
            .collect();
        // Everyone starts with one page; distribute the rest by lookahead
        // marginal utility.
        for (i, a) in self.alloc.iter_mut().enumerate() {
            *a = usize::from(self.active[i]);
        }
        let mut remaining = self.k.saturating_sub(live.len());
        while remaining > 0 {
            let mut best: Option<(f64, usize, usize)> = None; // (gain/page, proc, delta)
            for &i in &live {
                let Some(curve) = &curves[i] else { continue };
                let cur = self.alloc[i];
                let base = curve.misses(cur);
                // Lookahead: the best average gain over any extension.
                for delta in 1..=remaining.min(self.k - cur) {
                    let gain = base.saturating_sub(curve.misses(cur + delta)) as f64 / delta as f64;
                    if best.map(|(g, _, _)| gain > g).unwrap_or(gain > 0.0) {
                        best = Some((gain, i, delta));
                    }
                }
            }
            match best {
                Some((_, i, delta)) => {
                    self.alloc[i] += delta;
                    remaining -= delta;
                }
                None => {
                    // No measurable utility anywhere: spread evenly.
                    let share = remaining / live.len();
                    for &i in &live {
                        self.alloc[i] += share;
                    }
                    break;
                }
            }
        }
        for s in &mut self.streams {
            s.clear();
        }
    }
}

impl BoxAllocator for UcpPartition {
    fn grant(&mut self, proc: ProcId, now: Time) -> Grant {
        while now >= self.epoch_end {
            self.repartition();
            self.epoch_end += self.epoch;
        }
        Grant {
            height: self.alloc[proc.idx()].max(1),
            duration: self.epoch_end - now,
        }
    }

    fn on_proc_finished(&mut self, proc: ProcId, _now: Time) {
        self.active[proc.idx()] = false;
    }

    fn observe_accesses(&mut self, proc: ProcId, served: &[PageId]) {
        self.streams[proc.idx()].extend_from_slice(served);
    }

    fn checkpoint(&self, w: &mut SnapWriter) -> Result<(), CodecError> {
        w.put_u64(self.epoch_end);
        w.put_len(self.alloc.len());
        for &a in &self.alloc {
            w.put_usize(a);
        }
        for s in &self.streams {
            w.put_len(s.len());
            for &pg in s {
                w.put_page(pg);
            }
        }
        for &a in &self.active {
            w.put_bool(a);
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), CodecError> {
        let epoch_end = r.get_u64()?;
        let p = r.get_len()?;
        if p != self.alloc.len() {
            return Err(CodecError::Invalid("UCP processor count mismatch"));
        }
        let mut alloc = Vec::with_capacity(p);
        for _ in 0..p {
            alloc.push(r.get_usize()?);
        }
        let mut streams = Vec::with_capacity(p);
        for _ in 0..p {
            let n = r.get_len()?;
            let mut s = Vec::with_capacity(n);
            for _ in 0..n {
                s.push(r.get_page()?);
            }
            streams.push(s);
        }
        let mut active = Vec::with_capacity(p);
        for _ in 0..p {
            active.push(r.get_bool()?);
        }
        self.epoch_end = epoch_end;
        self.alloc = alloc;
        self.streams = streams;
        self.active = active;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "UCP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams::new(2, 16, 10)
    }

    fn feed_cycle(ucp: &mut UcpPartition, proc: u32, width: u64, len: usize) {
        let pages: Vec<PageId> = (0..len)
            .map(|i| PageId::namespaced(ProcId(proc), i as u64 % width))
            .collect();
        ucp.observe_accesses(ProcId(proc), &pages);
    }

    #[test]
    fn starts_with_equal_shares() {
        let mut ucp = UcpPartition::with_epoch(&params(), 100);
        let g = ucp.grant(ProcId(0), 0);
        assert_eq!(g.height, 8);
        assert_eq!(g.duration, 100);
    }

    #[test]
    fn reallocates_toward_utility() {
        let mut ucp = UcpPartition::with_epoch(&params(), 100);
        // Proc 0 cycles 12 pages (huge utility up to 12); proc 1 cycles 2.
        feed_cycle(&mut ucp, 0, 12, 240);
        feed_cycle(&mut ucp, 1, 2, 240);
        let g0 = ucp.grant(ProcId(0), 100);
        let g1 = ucp.grant(ProcId(1), 100);
        assert!(g0.height >= 12, "hungry proc got {}", g0.height);
        assert!(
            g1.height >= 2 && g1.height <= 4,
            "small proc got {}",
            g1.height
        );
        assert!(g0.height + g1.height <= 16);
    }

    #[test]
    fn idle_streams_fall_back_to_even_spread() {
        let mut ucp = UcpPartition::with_epoch(&params(), 100);
        // No observations at all: repartition spreads evenly.
        let g = ucp.grant(ProcId(0), 100);
        assert_eq!(g.height, 8);
    }

    #[test]
    fn grants_clip_to_epoch_boundary() {
        let mut ucp = UcpPartition::with_epoch(&params(), 100);
        let g = ucp.grant(ProcId(1), 130);
        assert_eq!(g.duration, 70);
    }

    #[test]
    fn checkpoint_round_trips_streams_and_allocation() {
        let mut ucp = UcpPartition::with_epoch(&params(), 100);
        feed_cycle(&mut ucp, 0, 12, 150);
        feed_cycle(&mut ucp, 1, 2, 90);
        ucp.grant(ProcId(0), 0);
        let mut w = SnapWriter::new();
        ucp.checkpoint(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut restored = UcpPartition::with_epoch(&params(), 100);
        restored.restore(&mut SnapReader::new(&bytes)).unwrap();
        // The pending monitor streams crossed the snapshot: the next epoch's
        // repartition must agree.
        let a = restored.grant(ProcId(0), 100);
        let b = ucp.grant(ProcId(0), 100);
        assert_eq!(a, b);
        assert_eq!(restored.allocation(), ucp.allocation());
    }

    #[test]
    fn finished_procs_release_their_share() {
        let mut ucp = UcpPartition::with_epoch(&params(), 100);
        feed_cycle(&mut ucp, 0, 12, 240);
        ucp.on_proc_finished(ProcId(1), 50);
        let g0 = ucp.grant(ProcId(0), 100);
        assert!(g0.height >= 12);
    }
}
