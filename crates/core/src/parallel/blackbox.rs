//! The black-box green-paging construction of paper §4.
//!
//! Each processor runs its own green-paging algorithm; the packer fits the
//! requested boxes into a memory budget, and processors whose requested box
//! does not currently fit receive a *minimum box* of height `k/v` (where `v`
//! is the number of surviving sequences, rounded up to a power of two) —
//! exactly the construction the paper describes for the `O(log² p)`-style
//! transformation of [SODA '21].
//!
//! Theorem 4 proves this *shape* of algorithm — no matter how good the green
//! pager — is doomed to a `Ω(log p / log log p)` makespan overhead on the
//! adversarial instances of `parapage-workloads`. Experiment E7 measures
//! exactly that separation against RAND-PAR/DET-PAR.

use parapage_cache::{CodecError, ProcId, SnapReader, SnapWriter, Time, WindowOutcome};

use crate::config::ModelParams;
use crate::green::GreenPolicy;
use crate::parallel::{BoxAllocator, Grant};

/// A parallel pager that allocates via per-processor green pagers packed
/// into a shared budget.
pub struct BlackboxGreenPacker<G: GreenPolicy> {
    params: ModelParams,
    /// Budget for green (policy-requested) boxes; minimum filler boxes come
    /// from a separate implicit budget of `k` (total memory `≤ capacity+k`).
    capacity: usize,
    pagers: Vec<G>,
    /// A requested height waiting for room, per processor.
    pending: Vec<Option<usize>>,
    /// Whether the processor's last grant was a policy box (so `observe`
    /// feedback should reach the green pager) or a filler.
    last_was_policy: Vec<bool>,
    /// In-flight policy boxes: (end time, height).
    inflight: Vec<(Time, usize)>,
    used: usize,
    active: Vec<bool>,
    active_count: usize,
    /// Cumulative memory impact charged to each processor.
    cum_impact: Vec<u128>,
    /// §4 fairness factor: a policy box is granted only while the
    /// processor's cumulative impact is within `factor ×` the minimum
    /// cumulative impact among active processors (plus one max box of
    /// slack). `None` = first-come-first-served.
    fairness: Option<f64>,
}

impl<G: GreenPolicy> BlackboxGreenPacker<G> {
    /// Builds the packer from one green pager per processor, with the
    /// default policy-box budget `k`.
    pub fn new(params: &ModelParams, pagers: Vec<G>) -> Self {
        Self::with_capacity(params, pagers, params.k)
    }

    /// Builds the packer with an explicit policy-box budget.
    pub fn with_capacity(params: &ModelParams, pagers: Vec<G>, capacity: usize) -> Self {
        let params = params.normalized_k();
        assert_eq!(pagers.len(), params.p, "one green pager per processor");
        assert!(capacity >= params.k, "budget must fit the largest box");
        BlackboxGreenPacker {
            params,
            capacity,
            pending: vec![None; pagers.len()],
            last_was_policy: vec![false; pagers.len()],
            cum_impact: vec![0; pagers.len()],
            pagers,
            inflight: Vec::new(),
            used: 0,
            active: vec![true; params.p],
            active_count: params.p,
            fairness: None,
        }
    }

    /// Enables the §4 *fair* packing discipline: no sequence may run more
    /// than `factor ×` ahead of the least-served active sequence in
    /// cumulative memory impact (one max-box of additive slack).
    pub fn with_fairness(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0);
        self.fairness = Some(factor);
        self
    }

    /// Cumulative memory impact charged per processor (diagnostics).
    pub fn cumulative_impact(&self) -> &[u128] {
        &self.cum_impact
    }

    fn fairness_blocks(&self, x: usize) -> bool {
        let Some(factor) = self.fairness else {
            return false;
        };
        let min = (0..self.active.len())
            .filter(|&i| self.active[i])
            .map(|i| self.cum_impact[i])
            .min()
            .unwrap_or(0);
        let k = self.params.k as u128;
        let slack = self.params.s as u128 * k * k;
        self.cum_impact[x] > ((min as f64) * factor) as u128 + slack
    }

    fn release_expired(&mut self, now: Time) {
        let mut used = self.used;
        self.inflight.retain(|&(end, h)| {
            if end <= now {
                used -= h;
                false
            } else {
                true
            }
        });
        self.used = used;
    }

    /// Height of the filler minimum box given the current survivor count.
    fn filler_height(&self) -> usize {
        let v = self.active_count.max(1).next_power_of_two();
        (self.params.k / v).max(1)
    }
}

impl<G: GreenPolicy> BoxAllocator for BlackboxGreenPacker<G> {
    fn grant(&mut self, proc: ProcId, now: Time) -> Grant {
        self.release_expired(now);
        let x = proc.idx();
        let want = match self.pending[x].take() {
            Some(h) => h,
            None => self.pagers[x].next_height(),
        };
        if self.used + want <= self.capacity && !self.fairness_blocks(x) {
            self.used += want;
            let duration = self.params.s * want as u64;
            self.inflight.push((now + duration, want));
            self.last_was_policy[x] = true;
            self.cum_impact[x] += want as u128 * duration as u128;
            Grant {
                height: want,
                duration,
            }
        } else {
            // No room: remember the request and hand out a minimum box.
            self.pending[x] = Some(want);
            self.last_was_policy[x] = false;
            let h = self.filler_height();
            let duration = self.params.s * h as u64;
            self.cum_impact[x] += h as u128 * duration as u128;
            Grant {
                height: h,
                duration,
            }
        }
    }

    fn on_proc_finished(&mut self, proc: ProcId, _now: Time) {
        if self.active[proc.idx()] {
            self.active[proc.idx()] = false;
            self.active_count -= 1;
        }
        // §4: survivor counts flow into the green pagers so threshold-aware
        // implementations (RebootingGreen) can reboot.
        let v = self.active_count.max(1);
        for pager in &mut self.pagers {
            pager.on_survivors(v);
        }
    }

    fn observe(&mut self, proc: ProcId, outcome: &WindowOutcome) {
        // Only policy boxes feed back into the green pager: filler boxes are
        // the packer's business, not the green algorithm's.
        if self.last_was_policy[proc.idx()] {
            self.pagers[proc.idx()].observe(outcome);
        }
    }

    fn checkpoint(&self, w: &mut SnapWriter) -> Result<(), CodecError> {
        let p = self.pending.len();
        w.put_len(p);
        for &pd in &self.pending {
            match pd {
                Some(h) => {
                    w.put_bool(true);
                    w.put_usize(h);
                }
                None => w.put_bool(false),
            }
        }
        for &b in &self.last_was_policy {
            w.put_bool(b);
        }
        w.put_len(self.inflight.len());
        for &(end, h) in &self.inflight {
            w.put_u64(end);
            w.put_usize(h);
        }
        for &a in &self.active {
            w.put_bool(a);
        }
        for &c in &self.cum_impact {
            w.put_u128(c);
        }
        // The green pagers carry their own dynamic state (RNG positions,
        // thresholds); a pager without checkpoint support fails the whole
        // save, which is the correct signal that this packer configuration
        // cannot be snapshotted.
        for pager in &self.pagers {
            pager.checkpoint(w)?;
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), CodecError> {
        let p = r.get_len()?;
        if p != self.pending.len() {
            return Err(CodecError::Invalid("BB-GREEN processor count mismatch"));
        }
        let mut pending = Vec::with_capacity(p);
        for _ in 0..p {
            pending.push(if r.get_bool()? {
                Some(r.get_usize()?)
            } else {
                None
            });
        }
        let mut last_was_policy = Vec::with_capacity(p);
        for _ in 0..p {
            last_was_policy.push(r.get_bool()?);
        }
        let n = r.get_len()?;
        let mut inflight = Vec::with_capacity(n);
        let mut used = 0usize;
        for _ in 0..n {
            let end = r.get_u64()?;
            let h = r.get_usize()?;
            used = used
                .checked_add(h)
                .ok_or(CodecError::Invalid("BB-GREEN in-flight overflow"))?;
            inflight.push((end, h));
        }
        if used > self.capacity {
            return Err(CodecError::Invalid("BB-GREEN in-flight exceeds budget"));
        }
        let mut active = Vec::with_capacity(p);
        for _ in 0..p {
            active.push(r.get_bool()?);
        }
        let mut cum_impact = Vec::with_capacity(p);
        for _ in 0..p {
            cum_impact.push(r.get_u128()?);
        }
        for pager in &mut self.pagers {
            pager.restore(r)?;
        }
        self.active_count = active.iter().filter(|&&a| a).count();
        self.pending = pending;
        self.last_was_policy = last_was_policy;
        self.inflight = inflight;
        self.used = used;
        self.active = active;
        self.cum_impact = cum_impact;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "BB-GREEN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::green::rand_green::RandGreen;

    struct FixedGreen(usize);
    impl GreenPolicy for FixedGreen {
        fn next_height(&mut self) -> usize {
            self.0
        }
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    fn params() -> ModelParams {
        ModelParams::new(4, 32, 10)
    }

    #[test]
    fn grants_requested_box_when_it_fits() {
        let p = params();
        let pagers: Vec<FixedGreen> = (0..4).map(|_| FixedGreen(16)).collect();
        let mut bb = BlackboxGreenPacker::new(&p, pagers);
        let g = bb.grant(ProcId(0), 0);
        assert_eq!(g.height, 16);
        assert_eq!(g.duration, 160);
    }

    #[test]
    fn hands_out_filler_when_budget_exhausted() {
        let p = params();
        let pagers: Vec<FixedGreen> = (0..4).map(|_| FixedGreen(32)).collect();
        let mut bb = BlackboxGreenPacker::new(&p, pagers);
        let g0 = bb.grant(ProcId(0), 0);
        assert_eq!(g0.height, 32); // fills the whole budget
        let g1 = bb.grant(ProcId(1), 0);
        assert_eq!(g1.height, 8); // filler k/v = 32/4
                                  // Pending request survives and is granted once room frees.
        let g1b = bb.grant(ProcId(1), g0.duration);
        assert_eq!(g1b.height, 32);
    }

    #[test]
    fn filler_height_grows_as_processors_finish() {
        let p = params();
        let pagers: Vec<FixedGreen> = (0..4).map(|_| FixedGreen(32)).collect();
        let mut bb = BlackboxGreenPacker::new(&p, pagers);
        let _ = bb.grant(ProcId(0), 0); // consume the budget
        assert_eq!(bb.grant(ProcId(1), 0).height, 8);
        bb.on_proc_finished(ProcId(2), 1);
        bb.on_proc_finished(ProcId(3), 1);
        // v = 2 survivors -> filler k/2 = 16.
        assert_eq!(bb.filler_height(), 16);
    }

    #[test]
    fn checkpoint_round_trips_packing_state() {
        let p = params();
        let pagers: Vec<RandGreen> = (0..4).map(|i| RandGreen::new(&p, i as u64)).collect();
        let mut bb = BlackboxGreenPacker::new(&p, pagers);
        let mut now = 0;
        for step in 0..17 {
            let g = bb.grant(ProcId((step % 4) as u32), now);
            now += g.duration / 3 + 1;
        }
        let mut w = SnapWriter::new();
        bb.checkpoint(&mut w).unwrap();
        let bytes = w.into_bytes();
        // Restore into a packer seeded differently: RNG state comes from
        // the snapshot.
        let pagers2: Vec<RandGreen> = (0..4).map(|i| RandGreen::new(&p, 77 + i as u64)).collect();
        let mut restored = BlackboxGreenPacker::new(&p, pagers2);
        restored.restore(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(restored.used, bb.used);
        assert_eq!(restored.inflight, bb.inflight);
        for step in 0..40 {
            let g1 = restored.grant(ProcId((step % 4) as u32), now);
            let g2 = bb.grant(ProcId((step % 4) as u32), now);
            assert_eq!(g1, g2, "diverged at step {step}");
            now += g1.duration / 2 + 1;
        }
    }

    #[test]
    fn works_with_rand_green_pagers() {
        let p = params();
        let pagers: Vec<RandGreen> = (0..4).map(|i| RandGreen::new(&p, i as u64)).collect();
        let mut bb = BlackboxGreenPacker::new(&p, pagers);
        let mut now = 0;
        for step in 0..100 {
            let g = bb.grant(ProcId((step % 4) as u32), now);
            assert!(g.height >= 1 && g.height <= p.k);
            now += g.duration / 4;
        }
    }

    #[test]
    fn observe_reaches_pager_only_for_policy_boxes() {
        // Use AdaptiveGreen-like behaviour via a counter.
        struct Counting {
            observed: usize,
        }
        impl GreenPolicy for Counting {
            fn next_height(&mut self) -> usize {
                32
            }
            fn observe(&mut self, _o: &WindowOutcome) {
                self.observed += 1;
            }
            fn name(&self) -> &'static str {
                "counting"
            }
        }
        let p = params();
        let pagers = vec![
            Counting { observed: 0 },
            Counting { observed: 0 },
            Counting { observed: 0 },
            Counting { observed: 0 },
        ];
        let mut bb = BlackboxGreenPacker::new(&p, pagers);
        let out = WindowOutcome {
            end_index: 1,
            stats: Default::default(),
            time_used: 1,
            finished: false,
        };
        let _ = bb.grant(ProcId(0), 0); // policy box
        bb.observe(ProcId(0), &out);
        let _ = bb.grant(ProcId(1), 0); // filler
        bb.observe(ProcId(1), &out);
        assert_eq!(bb.pagers[0].observed, 1);
        assert_eq!(bb.pagers[1].observed, 0);
    }
}

#[cfg(test)]
mod fairness_tests {
    use super::*;

    struct FixedGreen(usize);
    impl GreenPolicy for FixedGreen {
        fn next_height(&mut self) -> usize {
            self.0
        }
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    #[test]
    fn fairness_blocks_a_runaway_processor() {
        let p = ModelParams::new(4, 32, 10);
        let pagers: Vec<FixedGreen> = (0..4).map(|_| FixedGreen(16)).collect();
        let mut bb = BlackboxGreenPacker::new(&p, pagers).with_fairness(2.0);
        // Drive only processor 0 far ahead.
        let mut now = 0;
        let mut saw_filler = false;
        for _ in 0..100 {
            let g = bb.grant(ProcId(0), now);
            now += g.duration;
            if g.height != 16 {
                saw_filler = true;
                break;
            }
        }
        assert!(saw_filler, "fairness never throttled the runaway processor");
        // Cumulative impact tracked for everyone.
        assert!(bb.cumulative_impact()[0] > 0);
        assert_eq!(bb.cumulative_impact()[1], 0);
    }

    #[test]
    fn fcfs_mode_never_blocks_within_budget() {
        let p = ModelParams::new(4, 32, 10);
        let pagers: Vec<FixedGreen> = (0..4).map(|_| FixedGreen(8)).collect();
        let mut bb = BlackboxGreenPacker::new(&p, pagers);
        let mut now = 0;
        for _ in 0..50 {
            let g = bb.grant(ProcId(0), now);
            assert_eq!(g.height, 8);
            now += g.duration;
        }
    }
}
