//! # parapage-core
//!
//! The algorithms of *Online Parallel Paging with Optimal Makespan*
//! (Agrawal, Bender, Das, Kuszmaul, Peserico, Scquizzato — SPAA 2022),
//! implemented from scratch:
//!
//! * **Box algebra** ([`boxes`]) — memory boxes, box profiles, memory
//!   impact, the paper's WLOG normal form.
//! * **Green paging** ([`green`]) — RAND-GREEN (Theorem 1), a deterministic
//!   doubling baseline, and the exact offline optimum by dynamic
//!   programming.
//! * **Parallel paging** ([`parallel`]) — RAND-PAR (Theorem 2), DET-PAR
//!   (Theorem 3 / Corollary 3), static and adaptive baselines, and the
//!   black-box green packer of §4 (the algorithm family Theorem 4 dooms).
//! * **Well-roundedness** ([`wellrounded`]) — an executable audit of the
//!   structural property behind Lemma 5/6.
//!
//! Policies plug into the execution engine of `parapage-sched` through the
//! [`parallel::BoxAllocator`] trait. Everything is deterministic given a
//! seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boxes;
pub mod config;
pub mod distribution;
pub mod green;
pub mod parallel;
pub mod wellrounded;

pub use boxes::{run_profile, BoxProfile, MemBox, ProfileRun};
pub use config::{log2_ceil, log2_floor, ModelParams};
pub use distribution::BoxHeightDist;
pub use green::adaptive::AdaptiveGreen;
pub use green::dynamic::RebootingGreen;
pub use green::greedy::{audit_greedy, GreedyAudit};
pub use green::opt_dp::{green_opt, green_opt_normalized, GreenOpt};
pub use green::opt_dp_fast::{green_opt_fast, green_opt_fast_normalized};
pub use green::rand_green::RandGreen;
pub use green::universal::UniversalGreen;
pub use green::{run_green, GreenPolicy, GreenRun};
pub use parallel::baselines::{PropMissPartition, SrptPartition, StaticPartition};
pub use parallel::blackbox::BlackboxGreenPacker;
pub use parallel::det_par::{DetPar, PhaseRecord};
pub use parallel::hardened::HardenedAllocator;
pub use parallel::rand_par::{ChunkRecord, RandPar, RandParConfig};
pub use parallel::ucp::UcpPartition;
pub use parallel::{BoxAllocator, FaultEvent, Grant};
pub use wellrounded::{check_well_rounded, Interval, WellRoundedReport};
