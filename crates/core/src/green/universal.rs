//! UNIV-GREEN: a deterministic, oblivious green pager that equalizes
//! per-height impact — RAND-GREEN's guarantee without the randomness.
//!
//! RAND-GREEN's analysis (Lemma 1/Theorem 1) needs exactly one structural
//! property: every height's cumulative expected impact stays within a
//! constant of every other's, so whichever height OPT needs next, only an
//! `O(log p)` factor of impact is spent before a box of that height
//! arrives. Randomness is one way to get the property; *scheduling* is
//! another — the same move the paper makes when derandomizing RAND-PAR
//! into DET-PAR. UNIV-GREEN simply emits, at every step, a box of the
//! height whose cumulative impact is currently smallest (ties toward the
//! smallest height). The resulting sequence is a universal ruler-like
//! pattern: height `2^i·k/p` appears once for every `4^j−i`-ish boxes of
//! each smaller height, keeping all levels balanced deterministically —
//! and the gap between consecutive boxes of height `j` is `O(log p · j²/b)`
//! boxes' worth of impact, the deterministic analogue of Lemma 1.

use crate::config::ModelParams;
use crate::green::GreenPolicy;

/// Deterministic impact-balancing green pager.
#[derive(Clone, Debug)]
pub struct UniversalGreen {
    heights: Vec<usize>,
    /// Cumulative impact spent per height level.
    spent: Vec<u128>,
    s: u64,
}

impl UniversalGreen {
    /// Creates UNIV-GREEN over the paper's normalized height menu.
    pub fn new(params: &ModelParams) -> Self {
        let params = params.normalized_k();
        let heights = params.box_heights();
        UniversalGreen {
            spent: vec![0; heights.len()],
            heights,
            s: params.s,
        }
    }

    /// Cumulative impact per height level (diagnostics/tests).
    pub fn spent(&self) -> &[u128] {
        &self.spent
    }
}

impl GreenPolicy for UniversalGreen {
    fn next_height(&mut self) -> usize {
        // Choose the level whose cumulative impact *after* this box stays
        // smallest (ties toward small heights). Comparing post-allocation
        // totals is essential: comparing pre-allocation totals would let a
        // cold k-box run immediately (all levels start at zero) and pay
        // s·k² before any cheap progress — the deterministic analogue of
        // the "vulnerability" §3.2 warns about.
        let idx = (0..self.heights.len())
            .min_by_key(|&i| {
                let h = self.heights[i] as u128;
                (self.spent[i] + self.s as u128 * h * h, self.heights[i])
            })
            .expect("non-empty menu");
        let h = self.heights[idx];
        self.spent[idx] += self.s as u128 * (h as u128) * (h as u128);
        h
    }

    fn name(&self) -> &'static str {
        "UNIV-GREEN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::green::opt_dp_fast::green_opt_fast_normalized;
    use crate::green::run_green;
    use parapage_cache::PageId;

    fn params() -> ModelParams {
        ModelParams::new(8, 64, 10)
    }

    #[test]
    fn emits_a_ruler_like_sequence() {
        let mut g = UniversalGreen::new(&params());
        let seq: Vec<usize> = (0..341).map(|_| g.next_height()).collect();
        // Tall boxes must be earned: four 8s before the first 16, and the
        // first 64 only once the smaller levels have banked ~s·64².
        assert_eq!(&seq[..5], &[8, 8, 8, 8, 16]);
        assert!(seq.iter().position(|&h| h == 64).unwrap() > 40);
        // Balance means height h appears ~4x as often as height 2h
        // (impacts are 4x apart).
        let count = |h: usize| seq.iter().filter(|&&x| x == h).count() as f64;
        for (a, b) in [(8, 16), (16, 32), (32, 64)] {
            let ratio = count(a) / count(b);
            assert!(
                (3.0..=5.0).contains(&ratio),
                "count({a})/count({b}) = {ratio:.2}"
            );
        }
    }

    #[test]
    fn per_height_impacts_stay_balanced() {
        let mut g = UniversalGreen::new(&params());
        for _ in 0..5000 {
            g.next_height();
        }
        let max = g.spent().iter().max().unwrap();
        let min = g.spent().iter().min().unwrap();
        // Within two max-box impacts of each other.
        let max_box = 10u128 * 64 * 64;
        assert!(max - min <= 2 * max_box, "imbalance {max} - {min}");
    }

    #[test]
    fn competitive_on_phase_changing_sequences() {
        let p = params();
        let seq: Vec<PageId> = {
            let mut v = Vec::new();
            for i in 0..1500u64 {
                v.push(PageId(i % 4));
            }
            for i in 0..3000u64 {
                v.push(PageId(100 + i % 48));
            }
            v
        };
        let opt = green_opt_fast_normalized(&seq, &p);
        let run = run_green(&mut UniversalGreen::new(&p), &seq, &p);
        let ratio = run.impact as f64 / opt.impact as f64;
        let budget = 3.0 * (p.p as f64).log2() + 3.0;
        assert!(ratio <= budget, "UNIV-GREEN ratio {ratio:.2} > {budget:.2}");
    }

    #[test]
    fn deterministic_by_construction() {
        let mk = || {
            let mut g = UniversalGreen::new(&params());
            (0..100).map(|_| g.next_height()).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }
}
