//! Green paging with *evolving thresholds* (paper §4).
//!
//! When a green pager is used inside a parallel pager, the minimum memory
//! threshold grows as sequences complete: with `v` survivors, a factor-2
//! resource augmentation lets every survivor hold `k/v` pages at all times.
//! The paper notes this is "easily addressed … by simply *rebooting* the
//! green paging algorithm whenever the minimum threshold doubles — so that
//! it is always effectively running with fixed thresholds."
//!
//! [`RebootingGreen`] implements exactly that wrapper around RAND-GREEN:
//! it tracks the survivor count, and whenever the minimum threshold
//! `k/v̂` (with `v̂` the next power of two ≥ v) doubles, it rebuilds the
//! height distribution over the new `[k/v̂, k]` range. The reboot count is
//! exposed so tests and experiments can verify the `≤ log p` reboots the
//! paper's accounting charges.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::ModelParams;
use crate::distribution::BoxHeightDist;
use crate::green::GreenPolicy;

/// RAND-GREEN with survivor-tracking threshold reboots.
#[derive(Debug)]
pub struct RebootingGreen {
    k: usize,
    min_height: usize,
    dist: BoxHeightDist,
    rng: StdRng,
    reboots: usize,
    exponent: f64,
}

impl RebootingGreen {
    /// Starts with `p` survivors (minimum threshold `k/p`).
    pub fn new(params: &ModelParams, seed: u64) -> Self {
        Self::with_exponent(params, seed, 2.0)
    }

    /// Same, with a custom distribution exponent (ablations).
    pub fn with_exponent(params: &ModelParams, seed: u64, exponent: f64) -> Self {
        let params = params.normalized();
        let dist = BoxHeightDist::with_exponent(&params, exponent);
        RebootingGreen {
            k: params.k,
            min_height: params.min_height(),
            dist,
            rng: StdRng::seed_from_u64(seed),
            reboots: 0,
            exponent,
        }
    }

    /// Current minimum box height (the dynamic threshold).
    pub fn min_height(&self) -> usize {
        self.min_height
    }

    /// Number of reboots so far (the paper charges `≤ log p` of them).
    pub fn reboots(&self) -> usize {
        self.reboots
    }

    /// Informs the pager that `v` sequences survive; reboots if the
    /// implied minimum threshold `k/v̂` has at least doubled.
    pub fn set_survivors(&mut self, v: usize) {
        let v_pow = v.max(1).next_power_of_two();
        let new_min = (self.k / v_pow).max(1).min(self.k);
        if new_min >= 2 * self.min_height {
            self.min_height = new_min;
            let heights: Vec<usize> = {
                let mut out = Vec::new();
                let mut h = new_min;
                while h <= self.k {
                    out.push(h);
                    if h == self.k {
                        break;
                    }
                    h *= 2;
                }
                out
            };
            let weights: Vec<f64> = heights
                .iter()
                .map(|&j| (j as f64).powf(-self.exponent))
                .collect();
            self.dist = BoxHeightDist::from_weights(heights, &weights);
            self.reboots += 1;
        }
    }
}

impl GreenPolicy for RebootingGreen {
    fn next_height(&mut self) -> usize {
        self.dist.sample(&mut self.rng)
    }

    fn on_survivors(&mut self, v: usize) {
        self.set_survivors(v);
    }

    fn name(&self) -> &'static str {
        "REBOOT-GREEN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams::new(16, 128, 10)
    }

    #[test]
    fn starts_at_k_over_p() {
        let g = RebootingGreen::new(&params(), 1);
        assert_eq!(g.min_height(), 8);
        assert_eq!(g.reboots(), 0);
    }

    #[test]
    fn reboots_only_when_threshold_doubles() {
        let mut g = RebootingGreen::new(&params(), 1);
        g.set_survivors(12); // v̂ = 16, min still 8
        assert_eq!(g.reboots(), 0);
        g.set_survivors(8); // v̂ = 8, min 16 = doubled
        assert_eq!(g.reboots(), 1);
        assert_eq!(g.min_height(), 16);
        g.set_survivors(7); // v̂ = 8, no change
        assert_eq!(g.reboots(), 1);
        g.set_survivors(2); // v̂ = 2, min 64 = quadrupled, one reboot event
        assert_eq!(g.reboots(), 2);
        assert_eq!(g.min_height(), 64);
    }

    #[test]
    fn sampled_heights_respect_current_threshold() {
        let mut g = RebootingGreen::new(&params(), 5);
        g.set_survivors(4); // min = 32
        for _ in 0..500 {
            let h = g.next_height();
            assert!((32..=128).contains(&h) && h.is_power_of_two());
        }
    }

    #[test]
    fn total_reboots_bounded_by_log_p() {
        let mut g = RebootingGreen::new(&params(), 5);
        for v in (1..=16).rev() {
            g.set_survivors(v);
        }
        assert!(g.reboots() <= 4); // log2(16)
        assert_eq!(g.min_height(), 128);
    }

    #[test]
    fn single_survivor_gets_full_cache_heights() {
        let mut g = RebootingGreen::new(&params(), 5);
        g.set_survivors(1);
        assert_eq!(g.next_height(), 128);
    }
}
