//! Greedy competitiveness (paper Definition 1) as an executable audit.
//!
//! A green pager is *`g`-greedily competitive* if on **every prefix** `π`
//! of the sequence it has spent impact at most `g·c_OPT(π) + g'`. This is
//! the property Theorem 4 requires of the black-box pager — it rules out
//! "greenwashing" (overspending early to look greener later). Any
//! `c`-competitive *online* green pager is automatically greedily
//! `c`-competitive (a sequence can end at any time), which the tests verify
//! for RAND-GREEN; the audit also exposes non-greedy behaviour in
//! deliberately front-loaded profiles.

use parapage_cache::{run_window, LruCache, PageId};

use crate::boxes::BoxProfile;
use crate::green::opt_dp_fast::green_opt_fast;

/// Result of a greedy-competitiveness audit.
#[derive(Clone, Debug)]
pub struct GreedyAudit {
    /// Per-checkpoint `(prefix_len, alg_impact, opt_impact)` samples.
    pub checkpoints: Vec<(usize, u128, u128)>,
    /// The additive slack `g'` granted (impact of one maximal box).
    pub additive: u128,
    /// The resulting multiplicative factor
    /// `g = max over checkpoints of (alg − g')⁺ / opt`.
    pub factor: f64,
}

/// Audits a box profile for greedy competitiveness on `seq`.
///
/// Checkpoints are the box boundaries of the profile (the only points at
/// which the algorithm's cumulative impact changes), capped at
/// `max_checkpoints` evenly-spaced samples to keep the prefix-OPT
/// computations affordable. `heights` is the OPT height menu.
pub fn audit_greedy(
    seq: &[PageId],
    profile: &BoxProfile,
    heights: &[usize],
    s: u64,
    max_checkpoints: usize,
) -> GreedyAudit {
    // Walk the profile, recording (prefix served, cumulative impact).
    let mut boundaries: Vec<(usize, u128)> = Vec::new();
    let mut idx = 0usize;
    let mut impact = 0u128;
    for b in profile.boxes() {
        let mut cache = LruCache::new(b.height);
        let out = run_window(seq, idx, &mut cache, b.duration, s);
        idx = out.end_index;
        impact += b.impact();
        boundaries.push((idx, impact));
        if idx >= seq.len() {
            break;
        }
    }
    // Sample checkpoints.
    let stride = boundaries.len().div_ceil(max_checkpoints.max(1)).max(1);
    let samples: Vec<(usize, u128)> = boundaries
        .iter()
        .copied()
        .enumerate()
        .filter(|(i, _)| i % stride == 0 || *i + 1 == boundaries.len())
        .map(|(_, b)| b)
        .collect();

    let additive = heights
        .iter()
        .map(|&h| s as u128 * (h as u128) * (h as u128))
        .max()
        .unwrap_or(0);

    let mut checkpoints = Vec::with_capacity(samples.len());
    let mut factor: f64 = 0.0;
    for (prefix, alg) in samples {
        if prefix == 0 {
            continue;
        }
        let opt = green_opt_fast(&seq[..prefix], heights, s).impact;
        if opt > 0 {
            let excess = alg.saturating_sub(additive);
            factor = factor.max(excess as f64 / opt as f64);
        }
        checkpoints.push((prefix, alg, opt));
    }
    GreedyAudit {
        checkpoints,
        additive,
        factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boxes::MemBox;
    use crate::config::ModelParams;
    use crate::green::rand_green::RandGreen;
    use crate::green::run_green;

    fn phased_seq() -> Vec<PageId> {
        let mut out = Vec::new();
        for i in 0..600 {
            out.push(PageId(i % 4));
        }
        for i in 0..1200 {
            out.push(PageId(100 + i % 48));
        }
        for i in 0..600 {
            out.push(PageId(1000 + i % 8));
        }
        out
    }

    #[test]
    fn rand_green_is_greedily_competitive() {
        let params = ModelParams::new(8, 64, 10);
        let seq = phased_seq();
        let run = run_green(&mut RandGreen::new(&params, 3), &seq, &params);
        let audit = audit_greedy(&seq, &run.profile, &params.box_heights(), params.s, 12);
        assert!(!audit.checkpoints.is_empty());
        // Online pagers are greedily competitive; allow a generous constant
        // times log p.
        let log_p = (params.p as f64).log2();
        assert!(
            audit.factor <= 4.0 * log_p + 4.0,
            "greedy factor {} too large",
            audit.factor
        );
        // Every checkpoint's ALG dominates its own OPT (sanity).
        for &(n, alg, opt) in &audit.checkpoints {
            assert!(alg + audit.additive >= opt, "prefix {n}: {alg} < {opt}");
        }
    }

    #[test]
    fn overspending_profile_fails_the_audit() {
        // A profile that burns only maximal boxes on a long tiny loop is not
        // greedy: once past the additive slack (one max box), every prefix
        // costs ≈ 4.7× the prefix-OPT (max boxes spend 640 impact per ~604
        // requests of a 4-page loop; height-8 boxes spend 640 per ~44).
        let params = ModelParams::new(8, 64, 10);
        let seq: Vec<PageId> = (0..30_000).map(|i| PageId(i % 4)).collect();
        let mut profile = BoxProfile::new();
        for _ in 0..60 {
            profile.push(MemBox::canonical(64, params.s));
        }
        let audit = audit_greedy(&seq, &profile, &params.box_heights(), params.s, 12);
        let greedy = {
            let run = run_green(&mut RandGreen::new(&params, 3), &seq, &params);
            audit_greedy(&seq, &run.profile, &params.box_heights(), params.s, 12).factor
        };
        assert!(
            audit.factor > 1.5 * greedy.max(1.0),
            "front-loaded factor {} vs greedy {}",
            audit.factor,
            greedy
        );
        assert!(
            audit.factor > 3.0,
            "factor {} should approach ~4.7",
            audit.factor
        );
    }

    #[test]
    fn additive_slack_is_one_max_box() {
        let params = ModelParams::new(4, 32, 10);
        let seq = phased_seq();
        let run = run_green(&mut RandGreen::new(&params, 1), &seq, &params);
        let audit = audit_greedy(&seq, &run.profile, &params.box_heights(), params.s, 8);
        assert_eq!(audit.additive, 10 * 32 * 32);
    }
}
