//! Exact offline optimal green paging over normalized box profiles, via
//! dynamic programming.
//!
//! WLOG (paper §2) the offline green OPT allocates compartmentalized
//! power-of-two boxes. A profile is then a path through sequence positions:
//! a box of height `h` started at position `i` deterministically reaches
//! position `next(i, h)` (LRU from a cold cache, budget `s·h`). Minimizing
//! total impact `Σ s·h²` is a shortest-path problem over `n+1` positions
//! with one edge per (position, height), solved backwards in
//! `O(n · |heights| · max_box_service)` time.
//!
//! This DP is the denominator of every green competitive ratio in the
//! experiments (E1) and feeds the aggregate `T_OPT` impact bound.

use parapage_cache::{run_box, PageId};

use crate::boxes::{BoxProfile, MemBox};
use crate::config::ModelParams;

/// An optimal offline green-paging solution.
#[derive(Clone, Debug)]
pub struct GreenOpt {
    /// Minimum total memory impact over normalized compartmentalized
    /// profiles with the given height menu.
    pub impact: u128,
    /// A profile achieving it.
    pub profile: BoxProfile,
}

/// Computes the optimal profile for `seq` using the paper's height menu
/// `{k/p, 2k/p, …, k}`.
pub fn green_opt_normalized(seq: &[PageId], params: &ModelParams) -> GreenOpt {
    green_opt(seq, &params.box_heights(), params.s)
}

/// Computes the optimal profile for `seq` over an arbitrary ascending menu
/// of box heights (all ≥ 1).
///
/// # Panics
/// If `heights` is empty or contains 0.
pub fn green_opt(seq: &[PageId], heights: &[usize], s: u64) -> GreenOpt {
    assert!(!heights.is_empty(), "need at least one height");
    assert!(heights.iter().all(|&h| h >= 1), "heights must be positive");
    let n = seq.len();
    // cost[i] = min impact to finish from position i; choice[i] = height idx.
    let mut cost = vec![u128::MAX; n + 1];
    let mut choice = vec![usize::MAX; n + 1];
    cost[n] = 0;
    for i in (0..n).rev() {
        for (hi, &h) in heights.iter().enumerate() {
            let out = run_box(seq, i, h, s);
            debug_assert!(out.end_index > i);
            let box_impact = MemBox::canonical(h, s).impact();
            let total = box_impact + cost[out.end_index];
            if total < cost[i] {
                cost[i] = total;
                choice[i] = hi;
            }
        }
    }
    // Reconstruct.
    let mut profile = BoxProfile::new();
    let mut i = 0;
    while i < n {
        let h = heights[choice[i]];
        profile.push(MemBox::canonical(h, s));
        i = run_box(seq, i, h, s).end_index;
    }
    GreenOpt {
        impact: cost[0],
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boxes::run_profile;
    use crate::green::rand_green::RandGreen;
    use crate::green::run_green;

    fn cyc(n: usize, w: u64) -> Vec<PageId> {
        (0..n).map(|i| PageId(i as u64 % w)).collect()
    }

    #[test]
    fn empty_sequence_costs_nothing() {
        let params = ModelParams::new(4, 16, 10);
        let opt = green_opt_normalized(&[], &params);
        assert_eq!(opt.impact, 0);
        assert!(opt.profile.is_empty());
    }

    #[test]
    fn reconstructed_profile_achieves_reported_impact_and_finishes() {
        let params = ModelParams::new(4, 32, 10);
        let seq = cyc(300, 12);
        let opt = green_opt_normalized(&seq, &params);
        let run = run_profile(&seq, &opt.profile, params.s);
        assert!(run.finished);
        assert_eq!(run.impact_used, opt.impact);
    }

    #[test]
    fn prefers_one_fitting_box_over_many_tiny_ones() {
        // Cycle of width 16: a height-16 box is drastically greener than
        // height-8 churn.
        let params = ModelParams::new(4, 32, 10);
        let seq = cyc(200, 16);
        let opt = green_opt_normalized(&seq, &params);
        assert!(
            opt.profile.boxes().iter().any(|b| b.height >= 16),
            "profile {:?}",
            opt.profile
        );
    }

    #[test]
    fn prefers_small_boxes_for_fresh_streams() {
        // All-distinct pages: any height misses everything, so minimum
        // height minimizes impact.
        let params = ModelParams::new(8, 64, 10);
        let seq: Vec<PageId> = (0..100).map(PageId).collect();
        let opt = green_opt_normalized(&seq, &params);
        assert!(opt.profile.boxes().iter().all(|b| b.height == 8));
    }

    #[test]
    fn opt_lower_bounds_rand_green() {
        let params = ModelParams::new(8, 64, 10);
        let seq = cyc(400, 24);
        let opt = green_opt_normalized(&seq, &params);
        for seed in 0..5 {
            let run = run_green(&mut RandGreen::new(&params, seed), &seq, &params);
            assert!(
                run.impact >= opt.impact,
                "seed {seed}: {} < {}",
                run.impact,
                opt.impact
            );
        }
    }

    #[test]
    fn richer_height_menu_never_hurts() {
        let seq = cyc(250, 10);
        let coarse = green_opt(&seq, &[4, 16], 10);
        let fine = green_opt(&seq, &[4, 8, 16], 10);
        assert!(fine.impact <= coarse.impact);
    }
}
