//! Green paging (paper §2, §3.1): a single processor served through a
//! dynamically-sized cache, minimizing *memory impact* — the integral of
//! cache size over time.
//!
//! WLOG (from the paper and its predecessor [Agrawal et al., SODA '21]) a
//! green-paging algorithm emits a sequence of compartmentalized boxes with
//! power-of-two heights in `[k/p, k]`; the impact of a box of height `j` is
//! `s·j²`. This module defines the policy interface, the box-by-box
//! executor, and three policies:
//!
//! * [`rand_green::RandGreen`] — the paper's randomized `O(log p)`-competitive
//!   algorithm (Theorem 1);
//! * [`adaptive::AdaptiveGreen`] — a deterministic doubling heuristic in the
//!   spirit of the SODA '21 online algorithm, used as a baseline;
//! * [`opt_dp::green_opt`] — the exact offline optimum over normalized box
//!   profiles, computed by dynamic programming (the denominator of every
//!   green competitive ratio in the experiments);
//! * [`opt_dp_fast::green_opt_fast`] — the same optimum in
//!   `O(|heights|·n·log² n)` via Mattson distances + Fenwick corrections,
//!   used wherever traces are long.
//!
//! [`universal::UniversalGreen`] derandomizes RAND-GREEN by *scheduling*
//! the impact balance instead of sampling it — the same move that turns
//! RAND-PAR into DET-PAR.
//!
//! Two §4 companions: [`dynamic::RebootingGreen`] implements the paper's
//! evolving-threshold variant (reboot when the minimum threshold doubles),
//! and [`greedy::audit_greedy`] turns Definition 1 (greedy
//! competitiveness) into an executable audit.

pub mod adaptive;
pub mod dynamic;
pub mod greedy;
pub mod opt_dp;
pub mod opt_dp_fast;
pub mod rand_green;
pub mod universal;

use parapage_cache::{
    run_box, CacheStats, CodecError, PageId, SnapReader, SnapWriter, Time, WindowOutcome,
};

use crate::boxes::{BoxProfile, MemBox};
use crate::config::ModelParams;

/// An online green-paging policy: chooses the next box height, optionally
/// observing how the previous box went.
///
/// Policies that never read [`GreenPolicy::observe`]'s argument are
/// *oblivious* in the paper's sense.
pub trait GreenPolicy {
    /// Height of the next box to allocate (must be ≥ 1).
    fn next_height(&mut self) -> usize;

    /// Feedback after a box completes (default: ignored — oblivious).
    fn observe(&mut self, _outcome: &WindowOutcome) {}

    /// Notification that `v` sequences survive in the surrounding parallel
    /// run (default: ignored). [`dynamic::RebootingGreen`] uses this to
    /// implement the paper's §4 threshold reboots.
    fn on_survivors(&mut self, _v: usize) {}

    /// Serializes the pager's dynamic state (RNG position, thresholds) so a
    /// surrounding parallel run can be snapshotted; mirrors
    /// `BoxAllocator::checkpoint`. The default refuses with
    /// [`CodecError::Unsupported`].
    fn checkpoint(&self, _w: &mut SnapWriter) -> Result<(), CodecError> {
        Err(CodecError::Unsupported(self.name()))
    }

    /// Restores state written by [`GreenPolicy::checkpoint`] into a pager
    /// constructed with the same parameters.
    fn restore(&mut self, _r: &mut SnapReader<'_>) -> Result<(), CodecError> {
        Err(CodecError::Unsupported(self.name()))
    }

    /// Short human-readable policy name for reports.
    fn name(&self) -> &'static str;
}

/// Result of running a green policy to completion on one sequence.
#[derive(Clone, Debug)]
pub struct GreenRun {
    /// The boxes the policy allocated, in order (the last box is charged in
    /// full even if the sequence finished mid-box, matching the paper's
    /// accounting where allocations are committed).
    pub profile: BoxProfile,
    /// Total memory impact of all allocated boxes.
    pub impact: u128,
    /// Wall-clock time until the sequence completed.
    pub elapsed: Time,
    /// Aggregate hits/misses.
    pub stats: CacheStats,
}

/// Runs `policy` on `seq` until every request is served, charging one
/// compartmentalized box per [`GreenPolicy::next_height`] call.
///
/// Termination is guaranteed because a box of height `h ≥ 1` has budget
/// `s·h ≥ s` and therefore always serves at least one request.
pub fn run_green<P: GreenPolicy + ?Sized>(
    policy: &mut P,
    seq: &[PageId],
    params: &ModelParams,
) -> GreenRun {
    let s = params.s;
    let mut idx = 0;
    let mut profile = BoxProfile::new();
    let mut impact = 0u128;
    let mut elapsed: Time = 0;
    let mut stats = CacheStats::default();
    while idx < seq.len() {
        let h = policy.next_height();
        assert!(h >= 1, "green policy {} produced a zero box", policy.name());
        let b = MemBox::canonical(h, s);
        let out = run_box(seq, idx, h, s);
        debug_assert!(out.end_index > idx, "box made no progress");
        policy.observe(&out);
        profile.push(b);
        impact += b.impact();
        elapsed += if out.finished {
            out.time_used
        } else {
            b.duration
        };
        stats += out.stats;
        idx = out.end_index;
    }
    GreenRun {
        profile,
        impact,
        elapsed,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(usize);
    impl GreenPolicy for Fixed {
        fn next_height(&mut self) -> usize {
            self.0
        }
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    #[test]
    fn fixed_policy_completes_and_charges_boxes() {
        let params = ModelParams::new(4, 16, 10);
        let seq: Vec<PageId> = (0..20).map(|i| PageId(i % 4)).collect();
        let run = run_green(&mut Fixed(8), &seq, &params);
        assert!(run.stats.accesses() == 20);
        assert_eq!(run.impact, run.profile.impact());
        assert!(run.profile.is_normalized(&params));
        // Height 8 holds the 4-page cycle with budget to spare: one box,
        // 4 compulsory misses, 16 hits.
        assert_eq!(run.stats.misses, 4);
        assert_eq!(run.profile.len(), 1);
    }

    #[test]
    fn undersized_boxes_pay_compartmentalization() {
        // A height-4 box (budget 40 = s·4) spends its entire budget on the
        // 4 compulsory misses of a 4-page cycle, so every box re-misses:
        // compartmentalization makes small boxes useless here.
        let params = ModelParams::new(4, 16, 10);
        let seq: Vec<PageId> = (0..20).map(|i| PageId(i % 4)).collect();
        let run = run_green(&mut Fixed(4), &seq, &params);
        assert_eq!(run.stats.misses, 20);
        assert_eq!(run.profile.len(), 5);
    }

    #[test]
    fn minimum_height_still_terminates() {
        let params = ModelParams::new(4, 16, 10);
        let seq: Vec<PageId> = (0..50).map(PageId).collect();
        let run = run_green(&mut Fixed(1), &seq, &params);
        assert_eq!(run.stats.misses, 50);
        // Every box of height 1 serves exactly one all-miss request.
        assert_eq!(run.profile.len(), 50);
    }

    #[test]
    fn elapsed_counts_partial_final_box() {
        let params = ModelParams::new(4, 16, 10);
        let seq = vec![PageId(1)];
        let run = run_green(&mut Fixed(4), &seq, &params);
        // One miss = 10 steps, not the full 40-step box duration.
        assert_eq!(run.elapsed, 10);
        // But impact charges the whole box.
        assert_eq!(run.impact, 4 * 40);
    }
}
