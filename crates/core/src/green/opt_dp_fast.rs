//! Accelerated offline green-paging optimum.
//!
//! [`crate::green::opt_dp::green_opt`] recomputes every box transition by
//! direct simulation — `O(n · |heights| · box_service)` — which dominates
//! the lower-bound pipeline on long traces. This module computes the same
//! optimum in `O(|heights| · n · log² n)` using two classical facts about
//! LRU started from a cold cache at position `i`:
//!
//! 1. a request `j ≥ i` whose previous access `prev(j)` is `≥ i` hits under
//!    height `h` **iff its global Mattson stack distance is ≤ h** (all the
//!    distinct pages between `prev(j)` and `j` lie inside the window);
//! 2. a request with `prev(j) < i` is cold in the window and always misses.
//!
//! So the cost of a box started at `i` is a *global* per-request cost
//! (prefix-summable) plus a correction of `(s−1)` for each "crossing"
//! request — `prev(j) < i ≤ j` with global distance ≤ `h` — counted by a
//! Fenwick tree maintained over a descending sweep of `i`. The box
//! endpoint `next(i, h)` then falls out of a binary search, and the DP over
//! positions is unchanged.

use parapage_cache::{stack_distances, Fenwick, PageId};

use crate::boxes::{BoxProfile, MemBox};
use crate::config::ModelParams;
use crate::green::opt_dp::GreenOpt;

/// Previous-occurrence index of each request (`usize::MAX` for first
/// touches).
fn prev_occurrence(seq: &[PageId]) -> Vec<usize> {
    let mut last = std::collections::HashMap::new();
    let mut prev = vec![usize::MAX; seq.len()];
    for (j, &p) in seq.iter().enumerate() {
        if let Some(&q) = last.get(&p) {
            prev[j] = q;
        }
        last.insert(p, j);
    }
    prev
}

/// `next[i]` table for one height: first unserved index when a canonical
/// box of height `h` starts cold at `i`.
fn next_table(
    seq: &[PageId],
    dists: &[Option<usize>],
    prev: &[usize],
    h: usize,
    s: u64,
) -> Vec<u32> {
    let n = seq.len();
    let budget = s as u128 * h as u128;
    // Global per-request cost under height h (ignoring window coldness).
    let mut pref = vec![0u128; n + 1];
    let mut hit = vec![false; n];
    for j in 0..n {
        let is_hit = matches!(dists[j], Some(d) if d <= h);
        hit[j] = is_hit;
        pref[j + 1] = pref[j] + if is_hit { 1 } else { s as u128 };
    }
    // removal[q] = requests j with prev(j) == q (they leave the crossing
    // set once the window start reaches q).
    let mut removal: Vec<Vec<u32>> = vec![Vec::new(); n];
    for j in 0..n {
        if hit[j] && prev[j] != usize::MAX {
            removal[prev[j]].push(j as u32);
        }
    }
    let mut fw = Fenwick::new(n);
    let mut next = vec![0u32; n];
    let correction = (s - 1) as u128;
    for i in (0..n).rev() {
        // Maintain C_i = { j : hit_j, prev(j) < i <= j }.
        if hit[i] && prev[i] != usize::MAX {
            fw.add(i, 1);
        }
        for &j in &removal[i] {
            fw.add(j as usize, -1);
        }
        // Largest m with cost(i..=m) <= budget.
        let cost_upto = |m: usize| -> u128 {
            (pref[m + 1] - pref[i]) + correction * fw.range_sum(i, m) as u128
        };
        if cost_upto(i) > budget {
            // Cannot even serve one request (impossible for h >= 1, but be
            // safe).
            next[i] = i as u32;
            continue;
        }
        let (mut lo, mut hi) = (i, n - 1);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if cost_upto(mid) <= budget {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        next[i] = (lo + 1) as u32;
    }
    next
}

/// Drop-in replacement for [`crate::green::opt_dp::green_opt`], same
/// result, asymptotically faster on long sequences.
pub fn green_opt_fast(seq: &[PageId], heights: &[usize], s: u64) -> GreenOpt {
    assert!(!heights.is_empty());
    assert!(heights.iter().all(|&h| h >= 1));
    let n = seq.len();
    if n == 0 {
        return GreenOpt {
            impact: 0,
            profile: BoxProfile::new(),
        };
    }
    let dists = stack_distances(seq);
    let prev = prev_occurrence(seq);
    let tables: Vec<Vec<u32>> = heights
        .iter()
        .map(|&h| next_table(seq, &dists, &prev, h, s))
        .collect();

    let mut cost = vec![u128::MAX; n + 1];
    let mut choice = vec![usize::MAX; n + 1];
    cost[n] = 0;
    for i in (0..n).rev() {
        for (hi, &h) in heights.iter().enumerate() {
            let nx = tables[hi][i] as usize;
            if nx <= i {
                continue;
            }
            let total = MemBox::canonical(h, s).impact() + cost[nx];
            if total < cost[i] {
                cost[i] = total;
                choice[i] = hi;
            }
        }
    }
    let mut profile = BoxProfile::new();
    let mut i = 0;
    while i < n {
        let hi = choice[i];
        profile.push(MemBox::canonical(heights[hi], s));
        i = tables[hi][i] as usize;
    }
    GreenOpt {
        impact: cost[0],
        profile,
    }
}

/// Convenience wrapper with the paper's normalized height menu.
pub fn green_opt_fast_normalized(seq: &[PageId], params: &ModelParams) -> GreenOpt {
    green_opt_fast(seq, &params.box_heights(), params.s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::green::opt_dp::green_opt;
    use parapage_cache::run_box;

    fn cyc(n: usize, w: u64) -> Vec<PageId> {
        (0..n).map(|i| PageId(i as u64 % w)).collect()
    }

    fn phased(parts: &[(u64, usize)]) -> Vec<PageId> {
        let mut out = Vec::new();
        let mut base = 0u64;
        for &(w, n) in parts {
            for i in 0..n {
                out.push(PageId(base + (i as u64 % w)));
            }
            base += w;
        }
        out
    }

    #[test]
    fn next_table_matches_run_box() {
        let seqs = vec![
            cyc(200, 7),
            phased(&[(4, 50), (20, 80), (3, 40)]),
            (0..100).map(PageId).collect::<Vec<_>>(),
        ];
        for seq in seqs {
            let dists = stack_distances(&seq);
            let prev = prev_occurrence(&seq);
            for &h in &[1usize, 2, 5, 8, 16, 64] {
                let table = next_table(&seq, &dists, &prev, h, 9);
                for (i, &entry) in table.iter().enumerate() {
                    let expect = run_box(&seq, i, h, 9).end_index;
                    assert_eq!(entry as usize, expect, "h={h} i={i} (len {})", seq.len());
                }
            }
        }
    }

    #[test]
    fn matches_naive_dp_exactly() {
        let seqs = vec![
            cyc(300, 12),
            phased(&[(4, 100), (24, 150), (8, 100)]),
            (0..150).map(PageId).collect::<Vec<_>>(),
        ];
        for seq in seqs {
            for heights in [vec![4usize, 8, 16, 32], vec![1, 2, 4], vec![16]] {
                let naive = green_opt(&seq, &heights, 10);
                let fast = green_opt_fast(&seq, &heights, 10);
                assert_eq!(fast.impact, naive.impact, "heights {heights:?}");
                assert_eq!(fast.profile, naive.profile);
            }
        }
    }

    #[test]
    fn empty_sequence() {
        let opt = green_opt_fast(&[], &[4], 10);
        assert_eq!(opt.impact, 0);
        assert!(opt.profile.is_empty());
    }

    #[test]
    fn normalized_wrapper_agrees() {
        let params = ModelParams::new(4, 32, 10);
        let seq = phased(&[(6, 120), (20, 150)]);
        let a = green_opt_fast_normalized(&seq, &params);
        let b = crate::green::opt_dp::green_opt_normalized(&seq, &params);
        assert_eq!(a.impact, b.impact);
    }
}
