//! RAND-GREEN (paper §3.1): the remarkably simple randomized green-paging
//! algorithm behind Theorem 1.
//!
//! Every box height is drawn i.i.d. from the distribution
//! `Pr[j] ∝ k²/(j²p²)`, making every height's expected impact contribution
//! equal (Lemma 1). If OPT needs a box of height `z` somewhere, the expected
//! impact RAND-GREEN spends until it happens to draw `z` is only
//! `O(log p)·s·z²` — hence `O(log p)`-competitiveness in expectation.

use parapage_cache::{CodecError, SnapReader, SnapWriter};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::ModelParams;
use crate::distribution::BoxHeightDist;
use crate::green::GreenPolicy;

/// The paper's randomized online green pager.
///
/// Oblivious: box heights never depend on the request sequence.
#[derive(Debug)]
pub struct RandGreen {
    dist: BoxHeightDist,
    rng: StdRng,
}

impl RandGreen {
    /// RAND-GREEN with the paper's inverse-square height distribution.
    pub fn new(params: &ModelParams, seed: u64) -> Self {
        let params = params.normalized_k();
        RandGreen {
            dist: BoxHeightDist::paper(&params),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// RAND-GREEN with a custom height distribution (ablations).
    pub fn with_dist(dist: BoxHeightDist, seed: u64) -> Self {
        RandGreen {
            dist,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The height distribution in use.
    pub fn dist(&self) -> &BoxHeightDist {
        &self.dist
    }
}

impl GreenPolicy for RandGreen {
    fn next_height(&mut self) -> usize {
        self.dist.sample(&mut self.rng)
    }

    fn checkpoint(&self, w: &mut SnapWriter) -> Result<(), CodecError> {
        // The distribution is construction-time constant; only the RNG
        // position is dynamic.
        for word in self.rng.state() {
            w.put_u64(word);
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), CodecError> {
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.get_u64()?;
        }
        self.rng = StdRng::from_state(state);
        Ok(())
    }

    fn name(&self) -> &'static str {
        "RAND-GREEN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::green::run_green;
    use parapage_cache::PageId;

    #[test]
    fn completes_arbitrary_sequences() {
        let params = ModelParams::new(8, 64, 10);
        let seq: Vec<PageId> = (0..500).map(|i| PageId(i % 40)).collect();
        let run = run_green(&mut RandGreen::new(&params, 7), &seq, &params);
        assert_eq!(run.stats.accesses(), 500);
        assert!(run.profile.is_normalized(&params));
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let params = ModelParams::new(8, 64, 10);
        let seq: Vec<PageId> = (0..200).map(|i| PageId(i % 16)).collect();
        let a = run_green(&mut RandGreen::new(&params, 3), &seq, &params);
        let b = run_green(&mut RandGreen::new(&params, 3), &seq, &params);
        assert_eq!(a.impact, b.impact);
        assert_eq!(a.profile, b.profile);
    }

    #[test]
    fn different_seeds_generally_differ() {
        let params = ModelParams::new(16, 128, 10);
        let seq: Vec<PageId> = (0..400).map(|i| PageId(i % 100)).collect();
        let a = run_green(&mut RandGreen::new(&params, 1), &seq, &params);
        let b = run_green(&mut RandGreen::new(&params, 2), &seq, &params);
        assert_ne!(a.profile, b.profile);
    }

    #[test]
    fn checkpoint_resumes_the_height_stream() {
        let params = ModelParams::new(8, 64, 10);
        let mut g = RandGreen::new(&params, 5);
        for _ in 0..13 {
            g.next_height();
        }
        let mut w = parapage_cache::SnapWriter::new();
        g.checkpoint(&mut w).unwrap();
        let bytes = w.into_bytes();
        // A differently-seeded pager converges after restore.
        let mut resumed = RandGreen::new(&params, 999);
        resumed
            .restore(&mut parapage_cache::SnapReader::new(&bytes))
            .unwrap();
        for _ in 0..50 {
            assert_eq!(resumed.next_height(), g.next_height());
        }
    }

    #[test]
    fn heights_stay_in_normalized_range() {
        let params = ModelParams::new(8, 64, 10);
        let mut g = RandGreen::new(&params, 11);
        for _ in 0..1000 {
            let h = g.next_height();
            assert!((8..=64).contains(&h) && h.is_power_of_two());
        }
    }
}
