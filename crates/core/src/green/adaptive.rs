//! A deterministic doubling green pager, in the spirit of the SODA '21
//! online algorithm that RAND-GREEN matches.
//!
//! The strategy: start at the minimum height. If a box *churned* — it ended
//! with at least as many misses as its height, i.e. the working set
//! overflowed the box — double the height (up to `k`). If a box was
//! comfortably oversized (misses below a quarter of its height), halve it.
//! This "search for the working set size" pattern pays at most a
//! geometrically-summable overshoot per working-set change, mirroring how
//! the SODA '21 algorithm achieves `Θ(log p)` competitiveness.
//!
//! In this reproduction it serves as the deterministic baseline green pager
//! (E1) and as a plug-in for the black-box packer of §4.

use parapage_cache::WindowOutcome;

use crate::config::ModelParams;
use crate::green::GreenPolicy;

/// Deterministic adaptive green pager (doubling/halving heuristic).
#[derive(Clone, Debug)]
pub struct AdaptiveGreen {
    min_height: usize,
    max_height: usize,
    height: usize,
}

impl AdaptiveGreen {
    /// Creates the pager with heights confined to `[k/p, k]`.
    pub fn new(params: &ModelParams) -> Self {
        let min = params.min_height();
        AdaptiveGreen {
            min_height: min,
            max_height: params.k,
            height: min,
        }
    }

    /// Current height (the next box's height).
    pub fn height(&self) -> usize {
        self.height
    }
}

impl GreenPolicy for AdaptiveGreen {
    fn next_height(&mut self) -> usize {
        self.height
    }

    fn observe(&mut self, outcome: &WindowOutcome) {
        let h = self.height as u64;
        if outcome.finished {
            return;
        }
        if outcome.stats.misses >= h {
            // Box churned: the live working set exceeds the box.
            self.height = (self.height * 2).min(self.max_height);
        } else if outcome.stats.misses < h / 4 {
            // Box was mostly idle capacity.
            self.height = (self.height / 2).max(self.min_height);
        }
    }

    fn name(&self) -> &'static str {
        "ADAPT-GREEN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::green::run_green;
    use parapage_cache::PageId;

    #[test]
    fn grows_to_fit_a_large_cycle() {
        let params = ModelParams::new(8, 64, 10);
        // Cycle over 32 pages: minimum height 8 churns, policy should reach
        // a height that holds the cycle (32 or 64).
        let seq: Vec<PageId> = (0..2000).map(|i| PageId(i % 32)).collect();
        let mut g = AdaptiveGreen::new(&params);
        let run = run_green(&mut g, &seq, &params);
        assert!(g.height() >= 32, "ended at height {}", g.height());
        // Once sized correctly the tail of the run is all hits; total misses
        // stay far below the all-miss count.
        assert!(run.stats.misses < 500, "misses {}", run.stats.misses);
    }

    #[test]
    fn shrinks_after_working_set_drops() {
        let params = ModelParams::new(8, 64, 10);
        // Large cycle then a tiny one.
        let mut seq: Vec<PageId> = (0..1500).map(|i| PageId(i % 64)).collect();
        seq.extend((0..20_000).map(|i| PageId(1000 + i % 2)));
        let mut g = AdaptiveGreen::new(&params);
        let _ = run_green(&mut g, &seq, &params);
        assert!(g.height() <= 16, "ended at height {}", g.height());
    }

    #[test]
    fn stays_within_bounds() {
        let params = ModelParams::new(4, 16, 10);
        let seq: Vec<PageId> = (0..5000).map(PageId).collect(); // all misses
        let mut g = AdaptiveGreen::new(&params);
        let _ = run_green(&mut g, &seq, &params);
        assert!(g.height() >= params.min_height() && g.height() <= params.k);
    }

    #[test]
    fn fresh_stream_pins_height_high() {
        // All-distinct requests churn every box, driving height to k.
        let params = ModelParams::new(8, 64, 10);
        let seq: Vec<PageId> = (0..4000).map(PageId).collect();
        let mut g = AdaptiveGreen::new(&params);
        let _ = run_green(&mut g, &seq, &params);
        assert_eq!(g.height(), 64);
    }
}
