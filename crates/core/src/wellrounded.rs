//! The *well-roundedness* checker (paper §3.3).
//!
//! A parallel pager is well-rounded in phase `Q` (base height `b_Q`) when:
//!
//! 1. every active processor always holds a box of height at least `b_Q`;
//! 2. for every height `z ≥ b_Q` and every active processor `x`, `x`
//!    receives a box of height `≥ z` within every window of
//!    `O(z²·s/b_Q · log p)` steps — except within that distance of the phase
//!    end or of `x`'s completion.
//!
//! Lemma 5 shows any well-rounded algorithm is `O(log p)`-competitive, so
//! this checker turns the paper's central structural lemma into an
//! executable audit: the engine records allocation timelines, and
//! [`check_well_rounded`] verifies both properties against the recorded
//! phases (experiment E5, plus property tests).

use parapage_cache::Time;

use crate::config::ModelParams;
use crate::parallel::det_par::PhaseRecord;

/// One allocation interval of one processor, as recorded by the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Interval start time (inclusive).
    pub start: Time,
    /// Interval end time (exclusive).
    pub end: Time,
    /// Allocated height during the interval (0 = stalled).
    pub height: usize,
}

/// Result of a well-roundedness audit.
#[derive(Clone, Debug)]
pub struct WellRoundedReport {
    /// Whether both properties held within the allowed slack.
    pub ok: bool,
    /// The largest observed gap, normalized by the Lemma-6 period
    /// `s·z²·log p / b` (so values ≤ slack are compliant).
    pub max_gap_factor: f64,
    /// Human-readable descriptions of violations (empty when `ok`).
    pub violations: Vec<String>,
}

/// Audits recorded timelines against the well-roundedness definition.
///
/// * `timelines[x]` — processor `x`'s allocation intervals, in time order;
/// * `completions[x]` — when processor `x` finished;
/// * `phases` — phase starts and base heights (e.g.
///   [`crate::parallel::det_par::DetPar::phases`]);
/// * `slack` — multiplicative tolerance on the `s·z²·log p / b` gap bound
///   (Lemma 6 achieves 2 for tall classes; boundary effects justify a
///   little more — the experiments use 4).
pub fn check_well_rounded(
    timelines: &[Vec<Interval>],
    completions: &[Time],
    phases: &[PhaseRecord],
    params: &ModelParams,
    slack: f64,
) -> WellRoundedReport {
    let mut violations = Vec::new();
    let mut max_gap_factor: f64 = 0.0;
    let makespan = completions.iter().copied().max().unwrap_or(0);
    let log_p = params.log_p().max(1) as u64;
    let s = params.s;

    for (qi, phase) in phases.iter().enumerate() {
        let phase_end = phases
            .get(qi + 1)
            .map(|nx| nx.start)
            .unwrap_or(makespan)
            .min(makespan);
        if phase_end <= phase.start {
            continue;
        }
        let b = phase.base_height as u64;
        for (x, timeline) in timelines.iter().enumerate() {
            let life_end = completions[x].min(phase_end);
            if life_end <= phase.start {
                continue; // processor finished before this phase
            }
            // Property 1: continuous coverage at height >= b. Allow one base
            // period of slop at the phase boundary (a grant issued in the
            // previous phase may straddle it).
            let base_period = s * b;
            let mut cover_end = phase.start;
            for iv in timeline {
                if iv.end <= phase.start || iv.start >= life_end {
                    continue;
                }
                if iv.height as u64 >= b {
                    if iv.start.max(phase.start) > cover_end + base_period {
                        violations.push(format!(
                            "phase {qi} proc {x}: base-height hole \
                             [{cover_end}, {})",
                            iv.start
                        ));
                    }
                    cover_end = cover_end.max(iv.end.min(life_end));
                }
            }
            if cover_end + base_period < life_end {
                violations.push(format!(
                    "phase {qi} proc {x}: base coverage ends at {cover_end} \
                     before life end {life_end}"
                ));
            }

            // Property 2: bounded gaps for every height class z = b·2^c.
            let mut z = b;
            while z <= params.k as u64 {
                let period = (s as u128 * z as u128 * z as u128 * log_p as u128 / b as u128) as u64;
                let bound = (slack * period as f64) as u64 + s * z;
                let mut prev_end = phase.start;
                let mut worst = 0u64;
                for iv in timeline {
                    if iv.end <= phase.start || iv.start >= life_end {
                        continue;
                    }
                    if iv.height as u64 >= z {
                        let start = iv.start.max(phase.start);
                        worst = worst.max(start.saturating_sub(prev_end));
                        prev_end = prev_end.max(iv.end.min(life_end));
                    }
                }
                // The trailing window is exempt only up to the bound itself:
                // a time t earlier than `life_end - bound` must still see a
                // z-box within `bound`, so the trailing gap may reach at
                // most 2·bound (and in particular a class that is *never*
                // allocated in a long phase is a violation).
                let trailing = life_end.saturating_sub(prev_end);
                if period > 0 {
                    max_gap_factor = max_gap_factor.max(worst as f64 / period as f64);
                }
                if worst > bound {
                    violations.push(format!(
                        "phase {qi} proc {x} height {z}: gap {worst} > {bound}"
                    ));
                }
                if trailing > 2 * bound {
                    violations.push(format!(
                        "phase {qi} proc {x} height {z}: trailing gap \
                         {trailing} > {}",
                        2 * bound
                    ));
                }
                z *= 2;
            }
        }
    }
    WellRoundedReport {
        ok: violations.is_empty(),
        max_gap_factor,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams::new(4, 16, 10)
    }

    fn phase0(b: usize) -> Vec<PhaseRecord> {
        vec![PhaseRecord {
            start: 0,
            base_height: b,
            roster_len: 4,
        }]
    }

    #[test]
    fn continuous_full_cache_is_well_rounded() {
        // One processor holding the whole cache forever trivially satisfies
        // both properties.
        let p = params();
        let timelines = vec![vec![Interval {
            start: 0,
            end: 1000,
            height: 16,
        }]];
        let completions = vec![1000];
        let report = check_well_rounded(&timelines, &completions, &phase0(8), &p, 4.0);
        assert!(report.ok, "{:?}", report.violations);
    }

    #[test]
    fn base_height_hole_is_flagged() {
        let p = params();
        let timelines = vec![vec![
            Interval {
                start: 0,
                end: 100,
                height: 8,
            },
            // Hole [100, 600) with nothing allocated.
            Interval {
                start: 600,
                end: 1000,
                height: 8,
            },
        ]];
        let completions = vec![1000];
        let report = check_well_rounded(&timelines, &completions, &phase0(8), &p, 4.0);
        assert!(!report.ok);
        assert!(report.violations.iter().any(|v| v.contains("hole")));
    }

    #[test]
    fn missing_tall_boxes_are_flagged() {
        // Base-height coverage is fine, but the processor never receives a
        // box of height 16 during a very long phase.
        let p = params();
        let timelines = vec![vec![Interval {
            start: 0,
            end: 2_000_000,
            height: 8,
        }]];
        let completions = vec![2_000_000];
        let report = check_well_rounded(&timelines, &completions, &phase0(8), &p, 4.0);
        assert!(!report.ok);
        assert!(report.violations.iter().any(|v| v.contains("height 16")));
    }

    #[test]
    fn trailing_gap_is_exempt() {
        // Tall box early, then only base until completion: the trailing gap
        // must not be flagged for the tall class... provided the phase is
        // short enough that the trailing window explanation applies.
        let p = params();
        let timelines = vec![vec![
            Interval {
                start: 0,
                end: 160,
                height: 16,
            },
            Interval {
                start: 160,
                end: 1000,
                height: 8,
            },
        ]];
        let completions = vec![1000];
        let report = check_well_rounded(&timelines, &completions, &phase0(8), &p, 4.0);
        assert!(report.ok, "{:?}", report.violations);
    }

    #[test]
    fn finished_processors_are_not_audited_past_completion() {
        let p = params();
        let timelines = vec![
            vec![Interval {
                start: 0,
                end: 50,
                height: 16,
            }],
            vec![Interval {
                start: 0,
                end: 1000,
                height: 16,
            }],
        ];
        let completions = vec![50, 1000];
        let report = check_well_rounded(&timelines, &completions, &phase0(8), &p, 4.0);
        assert!(report.ok, "{:?}", report.violations);
    }
}
