//! Property-based tests for the core algorithms.

use proptest::prelude::*;

use parapage_cache::{PageId, ProcId, Time};
use parapage_core::*;

fn params_strategy() -> impl Strategy<Value = ModelParams> {
    (1usize..=5, 1usize..=4, 2u64..=20).prop_map(|(pe, ke, s)| {
        let p = 1 << pe;
        let k = p << ke;
        ModelParams::new(p, k, s)
    })
}

fn seq_strategy(max_len: usize) -> impl Strategy<Value = Vec<PageId>> {
    prop::collection::vec((0u64..40).prop_map(PageId), 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any green policy's impact is at least the offline optimum, and the
    /// optimum itself is at least s·(min height)·⌈n/(s·min height)⌉-ish —
    /// here we assert the weaker certified floor: impact ≥ n (every request
    /// occupies ≥1 page for ≥1 step).
    #[test]
    fn green_impact_floors(seq in seq_strategy(250), params in params_strategy(), seed in any::<u64>()) {
        let opt = green_opt_fast_normalized(&seq, &params);
        prop_assert!(opt.impact >= seq.len() as u128);
        let run = run_green(&mut RandGreen::new(&params, seed), &seq, &params);
        prop_assert!(run.impact >= opt.impact);
        let run2 = run_green(&mut AdaptiveGreen::new(&params), &seq, &params);
        prop_assert!(run2.impact >= opt.impact);
    }

    /// The fast DP and the naive DP agree exactly.
    #[test]
    fn fast_dp_equals_naive_dp(seq in seq_strategy(150), params in params_strategy()) {
        let heights = params.box_heights();
        let naive = green_opt(&seq, &heights, params.s);
        let fast = green_opt_fast(&seq, &heights, params.s);
        prop_assert_eq!(naive.impact, fast.impact);
    }

    /// Green OPT is monotone under sequence extension.
    #[test]
    fn green_opt_monotone_in_prefix(seq in seq_strategy(200), params in params_strategy()) {
        let half = &seq[..seq.len() / 2];
        let a = green_opt_fast_normalized(half, &params).impact;
        let b = green_opt_fast_normalized(&seq, &params).impact;
        prop_assert!(a <= b);
    }

    /// RAND-PAR chunks tile time exactly for every active processor, with
    /// heights from the normalized menu.
    #[test]
    fn rand_par_chunks_tile(params in params_strategy(), seed in any::<u64>()) {
        let mut rp = RandPar::new(&params, seed);
        let p = params.p;
        let mut times: Vec<Time> = vec![0; p];
        let mut done = vec![false; p];
        // Drive three chunks' worth of grants in event order.
        let mut steps = 0;
        while steps < 200 && done.iter().any(|&d| !d) {
            let x = (0..p).filter(|&i| !done[i]).min_by_key(|&i| times[i]).unwrap();
            let g = rp.grant(ProcId(x as u32), times[x]);
            prop_assert!(g.duration >= 1);
            prop_assert!(g.height == 0 || g.height <= params.k);
            if g.height > 0 {
                prop_assert!(g.height >= params.min_height() || g.height.is_power_of_two());
            }
            times[x] += g.duration;
            steps += 1;
            if rp.chunks().len() >= 3 && times[x] >= rp.chunks()[2].start {
                done[x] = true;
            }
        }
        // All chunk boundaries agree across processors.
        for c in rp.chunks() {
            prop_assert_eq!(c.primary_len % (params.s), 0);
        }
    }

    /// DET-PAR always grants at least the phase base height to the asker,
    /// and heights never exceed k.
    #[test]
    fn det_par_respects_base_and_cap(params in params_strategy()) {
        let mut dp = DetPar::new(&params);
        let mut t = 0;
        for i in 0..100u32 {
            let x = ProcId(i % params.p as u32);
            let g = dp.grant(x, t);
            let b = dp.phases().last().unwrap().base_height;
            prop_assert!(g.height >= b);
            prop_assert!(g.height <= params.k);
            if i % params.p as u32 == params.p as u32 - 1 {
                t += g.duration;
            }
        }
    }

    /// The height distribution is normalized and supported exactly on the
    /// power-of-two menu.
    #[test]
    fn distribution_is_well_formed(params in params_strategy(), e in 0.5f64..3.5) {
        let d = BoxHeightDist::with_exponent(&params, e);
        let total: f64 = d.probs().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert_eq!(d.heights().len(), d.probs().len());
        for &h in d.heights() {
            prop_assert!(h >= params.min_height() && h <= params.k);
        }
    }

    /// Profiles round-trip through the executor: the reported impact equals
    /// the sum of box impacts actually consumed.
    #[test]
    fn profile_executor_accounting(seq in seq_strategy(120), params in params_strategy(), seed in any::<u64>()) {
        let run = run_green(&mut RandGreen::new(&params, seed), &seq, &params);
        let re = run_profile(&seq, &run.profile, params.s);
        prop_assert!(re.finished);
        prop_assert_eq!(re.impact_used, run.impact);
        prop_assert_eq!(re.stats.accesses(), seq.len() as u64);
    }
}
