//! End-to-end tests of the `parapage` binary: every subcommand runs, exits
//! zero, and emits the expected table shapes; bad flags exit non-zero.

use std::process::Command;

fn parapage(args: &[&str]) -> (bool, String, String) {
    let exe = env!("CARGO_BIN_EXE_parapage");
    let out = Command::new(exe)
        .args(args)
        .output()
        .expect("spawn parapage");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = parapage(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("adversarial"));
}

#[test]
fn no_args_fails_with_usage() {
    let (ok, _, stderr) = parapage(&[]);
    assert!(!ok);
    assert!(stderr.contains("USAGE"));
}

#[test]
fn run_det_par_reports_metrics() {
    let (ok, stdout, stderr) = parapage(&[
        "run", "--policy", "det-par", "--p", "4", "--k", "32", "--len", "500",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("makespan"));
    assert!(stdout.contains("miss ratio"));
}

#[test]
fn run_with_gantt_renders_rows() {
    let (ok, stdout, _) = parapage(&[
        "run", "--policy", "static", "--p", "4", "--k", "32", "--len", "300", "--gantt",
    ]);
    assert!(ok);
    assert!(stdout.contains("P0"));
    assert!(stdout.contains("Gantt"));
}

#[test]
fn compare_lists_all_policies() {
    let (ok, stdout, stderr) = parapage(&[
        "compare",
        "--p",
        "4",
        "--k",
        "32",
        "--workload",
        "uniform",
        "--len",
        "400",
    ]);
    assert!(ok, "stderr: {stderr}");
    for name in ["det-par", "rand-par", "static", "ucp", "shared-lru"] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn adversarial_races_against_lemma8() {
    let (ok, stdout, stderr) = parapage(&[
        "adversarial",
        "--p",
        "8",
        "--k",
        "32",
        "--s",
        "32",
        "--alpha",
        "0.02",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("OPT (Lemma 8 schedule)"));
    assert!(stdout.contains("DET-PAR"));
}

#[test]
fn adversarial_rejects_bad_p() {
    let (ok, _, stderr) = parapage(&["adversarial", "--p", "7"]);
    assert!(!ok);
    assert!(stderr.contains("power of two"));
}

#[test]
fn gen_then_analyze_round_trip() {
    let dir = std::env::temp_dir().join("parapage_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("w.trace");
    let trace_str = trace.to_str().unwrap();
    let (ok, stdout, stderr) = parapage(&[
        "gen",
        "--workload",
        "zipf",
        "--p",
        "2",
        "--k",
        "16",
        "--len",
        "200",
        "--out",
        trace_str,
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("wrote 2 processors"));
    let (ok2, stdout2, stderr2) = parapage(&["analyze", "--trace", trace_str, "--max-cap", "16"]);
    assert!(ok2, "stderr: {stderr2}");
    assert!(stdout2.contains("P0") && stdout2.contains("P1"));
    // run accepts the trace too.
    let (ok3, _, stderr3) = parapage(&[
        "run", "--policy", "det-par", "--p", "2", "--k", "16", "--trace", trace_str,
    ]);
    assert!(ok3, "stderr: {stderr3}");
}

#[test]
fn green_reports_theorem1() {
    let (ok, stdout, stderr) = parapage(&[
        "green", "--p", "4", "--k", "32", "--len", "800", "--seeds", "3",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("RAND-GREEN"));
    assert!(stdout.contains("Theorem 1"));
}

#[test]
fn unknown_flags_are_rejected() {
    let (ok, _, stderr) = parapage(&["run", "--bogus", "3", "--p", "4", "--k", "32"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag"));
}

#[test]
fn unknown_policy_is_rejected() {
    let (ok, _, stderr) = parapage(&["run", "--policy", "magic", "--p", "4", "--k", "32"]);
    assert!(!ok);
    assert!(stderr.contains("unknown --policy"));
}

#[test]
fn profile_renders_both_strips() {
    let (ok, stdout, stderr) = parapage(&["profile", "--p", "4", "--k", "32", "--len", "600"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("OPT"));
    assert!(stdout.contains("RAND"));
    assert!(stdout.contains("ratio"));
}

#[test]
fn audit_passes_on_det_par() {
    let (ok, stdout, stderr) = parapage(&["audit", "--p", "4", "--k", "64", "--len", "800"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("well-rounded: true"));
}

#[test]
fn chaos_wal_cells_filter_runs_only_matching_cells() {
    let (ok, stdout, stderr) = parapage(&[
        "chaos",
        "--quick",
        "--wal",
        "--cells",
        "det-par/torn-tail",
        "--seed",
        "7",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("WAL corruption matrix"));
    assert!(stdout.contains("torn-tail"));
    assert!(!stdout.contains("stale-base"));
    assert!(stdout.contains("1 cells recovered byte-identically"));
    assert!(stdout.contains("filtered out by --cells"));
}

#[test]
fn chaos_rejects_a_filter_matching_nothing() {
    let (ok, _, stderr) = parapage(&["chaos", "--quick", "--wal", "--cells", "no-such-cell"]);
    assert!(!ok);
    assert!(stderr.contains("matched no cells"));
}
