//! `parapage adversarial`: build a Theorem-4 instance and race the online
//! policies against the Lemma-8 OPT schedule.

use parapage::prelude::*;

use crate::args::Args;

/// Executes the subcommand.
pub fn exec(args: &Args) -> Result<(), String> {
    let p: usize = args.get("p", 16)?;
    let k: usize = args.get("k", 4 * p)?;
    let s: u64 = args.get("s", k as u64)?;
    let alpha: f64 = args.get("alpha", 0.05)?;
    let seed: u64 = args.get("seed", 42)?;
    if !p.is_power_of_two() || p < 4 {
        return Err("--p must be a power of two >= 4".into());
    }
    if !k.is_power_of_two() || k < 2 * p {
        return Err("--k must be a power of two >= 2p".into());
    }

    let cfg = AdversarialConfig::scaled(p, k, s, alpha);
    let inst = AdversarialInstance::build(cfg);
    let params = cfg.params();
    println!(
        "instance: p={p} k={k} s={s} gamma={} suffix_phases={} \
         ({} prefixed sequences, {} total requests)\n",
        cfg.gamma,
        cfg.suffix_phases,
        inst.num_prefixed(),
        inst.workload.total_requests()
    );

    let sched = lemma8_makespan(&inst);
    let opts = EngineOpts::default();
    let seqs = inst.workload.seqs();

    let mut t = Table::new(["algorithm", "makespan", "vs OPT"]);
    t.row([
        "OPT (Lemma 8 schedule)".to_string(),
        sched.makespan().to_string(),
        "1.00".to_string(),
    ]);
    let mut det = DetPar::new(&params);
    let det_ms = run_engine(&mut det, seqs, &params, &opts)
        .map_err(|e| e.to_string())?
        .makespan;
    t.row([
        "DET-PAR".to_string(),
        det_ms.to_string(),
        format!("{:.3}", det_ms as f64 / sched.makespan() as f64),
    ]);
    let mut rnd = RandPar::new(&params, seed);
    let rnd_ms = run_engine(&mut rnd, seqs, &params, &opts)
        .map_err(|e| e.to_string())?
        .makespan;
    t.row([
        "RAND-PAR".to_string(),
        rnd_ms.to_string(),
        format!("{:.3}", rnd_ms as f64 / sched.makespan() as f64),
    ]);
    let pagers: Vec<RandGreen> = (0..p as u64)
        .map(|i| RandGreen::new(&params, seed ^ i))
        .collect();
    let mut bb = BlackboxGreenPacker::new(&params, pagers);
    let bb_ms = run_engine(&mut bb, seqs, &params, &opts)
        .map_err(|e| e.to_string())?
        .makespan;
    t.row([
        "BB-GREEN".to_string(),
        bb_ms.to_string(),
        format!("{:.3}", bb_ms as f64 / sched.makespan() as f64),
    ]);
    println!("{t}");
    println!(
        "OPT split: prefixes {} + suffixes {} (suffix-dominated, per Lemma 8)",
        sched.prefix_time, sched.suffix_time
    );
    Ok(())
}
