//! `parapage gen`: generate a workload and persist it as a trace file.

use crate::args::Args;
use crate::common::{model_from, workload_from};

/// Executes the subcommand.
pub fn exec(args: &Args) -> Result<(), String> {
    let params = model_from(args)?;
    let w = workload_from(args, &params)?;
    let out = args.require("out")?;
    parapage::workloads::trace::save(&w, std::path::Path::new(&out))
        .map_err(|e| format!("--out {out}: {e}"))?;
    println!(
        "wrote {} processors / {} requests to {out}",
        w.p(),
        w.total_requests()
    );
    Ok(())
}
