//! `parapage profile`: visualize green-paging box profiles — the offline
//! optimum next to RAND-GREEN's randomized profile on the same sequence.

use parapage::prelude::*;

use crate::args::Args;
use crate::common::{model_from, workload_from};

/// Executes the subcommand.
pub fn exec(args: &Args) -> Result<(), String> {
    let params = model_from(args)?;
    let w = workload_from(args, &params)?;
    let seed: u64 = args.get("seed", 42)?;
    let width: usize = args.get("width", 72)?;
    let seq = &w.seqs()[0];

    let opt = green_opt_fast_normalized(seq, &params);
    let rg = run_green(&mut RandGreen::new(&params, seed), seq, &params);

    println!(
        "green profiles on processor 0's sequence ({} requests), {}\n",
        seq.len(),
        params
    );
    println!(
        "OPT     impact {:>12}   {} boxes",
        opt.impact,
        opt.profile.len()
    );
    println!("{}", render_profile(&opt.profile, params.k, width));
    println!(
        "RAND    impact {:>12}   {} boxes   (ratio {:.2})",
        rg.impact,
        rg.profile.len(),
        rg.impact as f64 / opt.impact.max(1) as f64
    );
    println!("{}", render_profile(&rg.profile, params.k, width));
    println!("(each column is one slice of the profile's duration; bar height = box height, log-scaled to k)");
    Ok(())
}

/// Renders a box profile as a one-line strip: each column samples the
/// profile's height at an even fraction of its total duration.
fn render_profile(profile: &BoxProfile, k: usize, width: usize) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let total: u64 = profile.duration();
    if total == 0 {
        return String::new();
    }
    // Prefix-sum walk over the boxes.
    let mut out = String::with_capacity(width);
    let mut box_iter = profile.boxes().iter();
    let mut cur = box_iter.next().copied();
    let mut consumed: u64 = 0;
    for col in 0..width {
        let t = total * col as u64 / width as u64;
        while let Some(b) = cur {
            if t < consumed + b.duration {
                break;
            }
            consumed += b.duration;
            cur = box_iter.next().copied();
        }
        let h = cur.map(|b| b.height).unwrap_or(0);
        let level = if h == 0 {
            0
        } else {
            let ratio = (k as f64 / h as f64).log2();
            (7.0 - ratio).clamp(0.0, 7.0) as usize
        };
        out.push(GLYPHS[level]);
    }
    out
}
