//! `parapage green`: single-processor green paging, RAND-GREEN and
//! ADAPT-GREEN versus the offline optimum.

use parapage::prelude::*;

use crate::args::Args;
use crate::common::{model_from, workload_from};

/// Executes the subcommand.
pub fn exec(args: &Args) -> Result<(), String> {
    let params = model_from(args)?;
    let w = workload_from(args, &params)?;
    let seeds: u64 = args.get("seeds", 8)?;
    let seq = &w.seqs()[0];

    let opt = green_opt_fast_normalized(seq, &params);
    println!(
        "green paging on processor 0's sequence ({} requests), {}\n",
        seq.len(),
        params
    );

    let mut ratios = Vec::new();
    for seed in 0..seeds {
        let run = run_green(&mut RandGreen::new(&params, seed), seq, &params);
        ratios.push(run.impact as f64 / opt.impact as f64);
    }
    let rg = summarize(&ratios);
    let ad = run_green(&mut AdaptiveGreen::new(&params), seq, &params);

    let mut t = Table::new(["algorithm", "impact", "vs OPT", "boxes"]);
    t.row([
        "OPT (offline DP)".to_string(),
        opt.impact.to_string(),
        "1.00".to_string(),
        opt.profile.len().to_string(),
    ]);
    t.row([
        format!("RAND-GREEN (mean of {seeds})"),
        format!("{:.0}", rg.mean * opt.impact as f64),
        format!("{:.3} ± {:.3}", rg.mean, rg.ci95),
        "-".to_string(),
    ]);
    t.row([
        "ADAPT-GREEN".to_string(),
        ad.impact.to_string(),
        format!("{:.3}", ad.impact as f64 / opt.impact as f64),
        ad.profile.len().to_string(),
    ]);
    println!("{t}");
    println!(
        "Theorem 1: RAND-GREEN's expected ratio is O(log p) = O({})",
        params.log_p()
    );
    Ok(())
}
