//! `parapage faults`: a fault-injection matrix for one policy.
//!
//! Runs the policy clean first (to size the fault horizon), then replays
//! each named scenario twice — raw, and wrapped in `HardenedAllocator` —
//! and tabulates makespan degradation versus the clean run. Engine errors
//! (typically `MemoryLimitExceeded` for an unhardened policy under
//! pressure) are reported as rows, not fatal.
//!
//! The scenario × mode cells are independent runs, so the matrix fans out
//! across the pool; each cell fills its pre-assigned table row, keeping
//! the output identical for every `PARAPAGE_THREADS` value.

use parapage::prelude::*;
use rayon::prelude::*;

use crate::args::Args;
use crate::common::{model_from, run_named_policy_faults, workload_from};

/// Executes the subcommand.
pub fn exec(args: &Args) -> Result<(), String> {
    let params = model_from(args)?;
    let w = workload_from(args, &params)?;
    let policy = args.opt("policy").unwrap_or_else(|| "det-par".into());
    let seed: u64 = args.get("seed", 42)?;
    let opts = EngineOpts::default();

    let clean =
        run_named_policy_faults(&policy, &w, &params, &opts, seed, &FaultPlan::none(), false)?
            .map_err(|e| format!("clean run of `{policy}` failed: {e}"))?;
    let horizon = clean.makespan.max(1);

    println!(
        "fault matrix: policy {policy} on {} ({} requests, clean makespan {})\n",
        params,
        w.total_requests(),
        clean.makespan
    );
    let mut t = Table::new([
        "scenario", "mode", "outcome", "makespan", "x clean", "faults", "degraded", "peak mem",
    ]);
    let cells: Vec<(&str, bool)> = FAULT_SCENARIOS
        .iter()
        .flat_map(|&scenario| [false, true].map(|hardened| (scenario, hardened)))
        .collect();
    let rows: Vec<Result<[String; 8], String>> = cells
        .par_iter()
        .map(|&(scenario, hardened)| {
            let events = fault_scenario(scenario, params.p, params.k, horizon, seed)
                .expect("FAULT_SCENARIOS names are exhaustive");
            let plan = FaultPlan::new(events);
            let mode = if hardened { "hardened" } else { "raw" };
            let outcome =
                run_named_policy_faults(&policy, &w, &params, &opts, seed, &plan, hardened)?;
            Ok(match outcome {
                Ok(res) => [
                    scenario.to_string(),
                    mode.to_string(),
                    "ok".to_string(),
                    res.makespan.to_string(),
                    format!("{:.2}", res.makespan as f64 / horizon as f64),
                    res.faults_injected.to_string(),
                    res.degraded_grants.to_string(),
                    res.peak_memory.to_string(),
                ],
                Err(e) => [
                    scenario.to_string(),
                    mode.to_string(),
                    error_label(&e).to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ],
            })
        })
        .collect();
    for row in rows {
        t.row(row?);
    }
    println!("{t}");
    println!(
        "(`x clean` is makespan relative to the fault-free run; `degraded` counts \
         grants the hardened wrapper clamped or backed off)"
    );
    Ok(())
}

fn error_label(e: &EngineError) -> &'static str {
    match e {
        EngineError::ZeroDurationGrant { .. } => "zero-grant",
        EngineError::MemoryLimitExceeded { .. } => "mem-limit",
        EngineError::TimeCapExceeded { .. } => "time-cap",
        EngineError::TimeOverflow { .. } => "overflow",
    }
}
