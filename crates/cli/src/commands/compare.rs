//! `parapage compare`: every policy on the same workload.

use parapage::prelude::*;

use crate::args::Args;
use crate::common::{model_from, run_named_policy, workload_from, ALL_POLICIES};

/// Executes the subcommand.
pub fn exec(args: &Args) -> Result<(), String> {
    let params = model_from(args)?;
    let w = workload_from(args, &params)?;
    let seed: u64 = args.get("seed", 42)?;
    let opts = EngineOpts::default();
    let lb = opt_lower_bound(w.seqs(), params.k, params.s);

    println!(
        "comparing on {} ({} requests, T_OPT lower bound {lb})\n",
        params,
        w.total_requests()
    );
    let mut t = Table::new([
        "policy",
        "makespan",
        "vs LB",
        "mean compl",
        "miss %",
        "peak mem",
    ]);
    for &name in ALL_POLICIES {
        let res = run_named_policy(name, &w, &params, &opts, seed)?;
        t.row([
            name.to_string(),
            res.makespan.to_string(),
            format!("{:.2}", res.makespan as f64 / lb.max(1) as f64),
            format!("{:.0}", res.mean_completion()),
            format!("{:.1}", 100.0 * res.stats.miss_ratio()),
            res.peak_memory.to_string(),
        ]);
    }
    println!("{t}");
    Ok(())
}
