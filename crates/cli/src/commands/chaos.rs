//! `parapage chaos`: the crash-recovery matrix as a pre-PR gate.
//!
//! Drives the conformance resume-equivalence oracle over the full grid:
//! every engine policy × every named fault scenario × a set of
//! deterministic crashpoints (fractions of each cell's baseline tick
//! count). Each cell runs the workload once uninterrupted and once under
//! the supervisor with all the cell's crashes injected, and demands a
//! byte-identical [`RunResult`] and trace stream. A corrupted-snapshot
//! section verifies that bit-flipped and truncated snapshots are rejected
//! with typed errors for every policy, and a WAL corruption section
//! inflicts torn tails, partial tails, mid-record truncations, bit flips,
//! and stale-base/newer-log pairings on the incremental checkpoint log at
//! recovery time — each must surface as a typed truncation and still
//! recover byte-identically.
//!
//! Flags: `--seed N` re-seeds every workload and policy deterministically
//! (two runs with the same seed are byte-identical); `--cells SUBSTR[,..]`
//! runs only the cells whose `policy/scenario` or `policy/corruption`
//! label contains one of the given substrings; `--wal` skips the resume
//! and snapshot-corruption sections and runs the WAL matrix alone (the CI
//! smoke job's configuration); `--net` runs the network chaos matrix
//! instead — every transport fault kind × cut point × tenant count
//! against a live server, each cell required to produce reply streams
//! byte-identical to a clean run after retries, plus the idle-expiry and
//! load-shedding cells (`--quick` reduces the grid for CI).
//!
//! Exits non-zero on any divergence, failed recovery, or accepted
//! corruption.

use parapage::prelude::*;
use parapage_server::netchaos::{net_chaos_matrix, NetChaosOpts};

use crate::args::Args;

/// Crashpoints as fractions of each cell's baseline run: early, two
/// mid-run points straddling typical phase transitions, and late.
const CRASH_FRACS: &[f64] = &[0.1, 0.35, 0.6, 0.85];

/// The WAL corruption cells need enough baseline ticks for several epoch
/// boundaries (and, for the stale-base cell, two base installs) before the
/// crash, so their workload is stretched to at least this many requests
/// per processor.
const WAL_MIN_LEN: usize = 2000;

/// Workload family shared by every section: mixed working-set widths.
fn specs_for(p: usize, k: usize, len: usize) -> Vec<SeqSpec> {
    (0..p)
        .map(|x| match x % 3 {
            0 => SeqSpec::Cyclic {
                width: (k / 8).max(2),
                len,
            },
            1 => SeqSpec::Cyclic { width: k / 2, len },
            _ => SeqSpec::Zipf {
                universe: (k / 2).max(4),
                theta: 0.9,
                len,
            },
        })
        .collect()
}

/// The `--net` section: the transport-fault matrix against a live server.
fn exec_net(seed: u64, quick: bool, filters: Vec<String>) -> Result<(), String> {
    let opts = NetChaosOpts {
        seed,
        quick,
        filters,
        ..NetChaosOpts::default()
    };
    println!(
        "net chaos matrix: fault kind x cut point x tenant count{} \
         (bar: reply streams byte-identical to a clean run after retries)\n",
        if quick { " [quick]" } else { "" }
    );
    let report = net_chaos_matrix(&opts)?;
    let mut t = Table::new([
        "cell", "reconn", "retry", "replay", "shed", "t/o", "verdict",
    ]);
    let mut details: Vec<String> = Vec::new();
    for cell in &report.cells {
        let verdict = if cell.passed {
            "pass".to_string()
        } else {
            details.push(format!("{}: {}", cell.label, cell.detail));
            "FAIL".to_string()
        };
        t.row([
            cell.label.clone(),
            cell.retry.reconnects.to_string(),
            cell.retry.retries.to_string(),
            cell.retry.replays.to_string(),
            cell.retry.sheds.to_string(),
            cell.retry.timeouts.to_string(),
            verdict,
        ]);
    }
    println!("{t}");
    for d in &details {
        println!("  violation: {d}");
    }
    if report.failures() > 0 {
        return Err(format!(
            "net chaos matrix FAILED: {} of {} cells",
            report.failures(),
            report.cells.len()
        ));
    }
    if report.cells.is_empty() {
        return Err("--cells matched no net chaos cells".into());
    }
    println!(
        "\nnet chaos matrix passed: {} cells byte-identical after recovery{}",
        report.cells.len(),
        if report.skipped > 0 {
            format!(" ({} filtered out by --cells)", report.skipped)
        } else {
            String::new()
        }
    );
    Ok(())
}

/// Executes the subcommand.
pub fn exec(args: &Args) -> Result<(), String> {
    let quick = args.flag("quick");
    let wal_only = args.flag("wal");
    let p: usize = args.get("p", if quick { 4 } else { 8 })?;
    let k: usize = args.get("k", 8 * p)?;
    let s: u64 = args.get("s", 10)?;
    if !k.is_power_of_two() || k < p {
        return Err(format!("--k {k} must be a power of two >= --p {p}"));
    }
    let seed: u64 = args.get("seed", 42)?;
    let len: usize = args.get("len", if quick { 300 } else { 1200 })?;
    let filters: Vec<String> = args
        .opt("cells")
        .map(|s| {
            s.split(',')
                .map(|c| c.trim().to_ascii_lowercase())
                .filter(|c| !c.is_empty())
                .collect()
        })
        .unwrap_or_default();
    if args.flag("net") {
        return exec_net(seed, quick, filters);
    }
    let keep = |label: &str| {
        filters.is_empty()
            || filters
                .iter()
                .any(|f| label.to_ascii_lowercase().contains(f))
    };
    let params = ModelParams::new(p, k, s);

    let w = build_workload(&specs_for(p, k, len), seed);

    let mut failures = 0usize;
    let mut cells_run = 0usize;
    let mut cells_skipped = 0usize;

    if !wal_only {
        let horizon = {
            let mut alloc = DetPar::new(&params);
            run_engine(&mut alloc, w.seqs(), &params, &EngineOpts::default())
                .map_err(|e| format!("clean det-par run failed: {e}"))?
                .makespan
                .max(1)
        };

        println!(
            "chaos matrix: {} ({} requests, crashpoints at {:?} of each baseline)\n",
            params,
            w.total_requests(),
            CRASH_FRACS
        );

        // 1. Resume-equivalence grid.
        let mut t = Table::new(["policy", "scenario", "ticks", "crashes", "verdict"]);
        let mut details: Vec<String> = Vec::new();
        for &policy in CONFORM_POLICIES {
            for &scenario in FAULT_SCENARIOS {
                if !keep(&format!("{policy}/{scenario}")) {
                    cells_skipped += 1;
                    continue;
                }
                cells_run += 1;
                let events = fault_scenario(scenario, p, k, horizon, seed)
                    .ok_or_else(|| format!("unknown scenario `{scenario}`"))?;
                let plan = FaultPlan::new(events);
                let probe = check_resume(
                    policy,
                    w.seqs(),
                    &params,
                    &EngineOpts::default(),
                    seed,
                    scenario,
                    &plan,
                    &[],
                )?;
                let crash_ticks: Vec<u64> = CRASH_FRACS
                    .iter()
                    .map(|f| ((probe.baseline_ticks as f64 * f) as u64).max(1))
                    .collect();
                let c = check_resume(
                    policy,
                    w.seqs(),
                    &params,
                    &EngineOpts::default(),
                    seed,
                    scenario,
                    &plan,
                    &crash_ticks,
                )?;
                let verdict = if c.passed() {
                    "pass".to_string()
                } else {
                    failures += c.violations.len();
                    for v in &c.violations {
                        details.push(format!("{}/{}: {v}", c.policy, c.scenario));
                    }
                    format!("FAIL ({})", c.violations.len())
                };
                t.row([
                    c.policy.clone(),
                    c.scenario.clone(),
                    c.baseline_ticks.to_string(),
                    c.crashes.to_string(),
                    verdict,
                ]);
            }
        }
        println!("{t}");
        for d in &details {
            println!("  violation: {d}");
        }

        // 2. Corrupted snapshots must be rejected, typed, for every policy.
        println!("\ncorruption rejection (bit flips + truncation, typed errors):");
        for &policy in CONFORM_POLICIES {
            if !keep(policy) {
                cells_skipped += 1;
                continue;
            }
            cells_run += 1;
            match check_corruption_rejection(policy, w.seqs(), &params, seed) {
                Ok(()) => println!("  {policy}: pass"),
                Err(e) => {
                    println!("  {policy}: FAIL — {e}");
                    failures += 1;
                }
            }
        }
    }

    // 3. WAL corruption matrix: the incremental checkpoint log is torn,
    // truncated, bit-flipped, or paired with a stale base at recovery
    // time; the supervised run must detect it (typed truncation) and still
    // finish byte-identical to the uninterrupted run.
    let wal_w = if len >= WAL_MIN_LEN {
        w
    } else {
        build_workload(&specs_for(p, k, WAL_MIN_LEN), seed)
    };
    println!(
        "\nWAL corruption matrix ({} requests, epoch-per-record checkpoints):",
        wal_w.total_requests()
    );
    let mut t = Table::new(["policy", "cell", "crash@", "records", "truncs", "verdict"]);
    let mut details: Vec<String> = Vec::new();
    for &policy in CONFORM_POLICIES {
        for corruption in WalCorruption::ALL {
            let label = format!("{policy}/{corruption}");
            if !keep(&label) {
                cells_skipped += 1;
                continue;
            }
            cells_run += 1;
            let (row, cell_failures) =
                match check_wal_corruption(policy, wal_w.seqs(), &params, seed, corruption) {
                    Ok(c) => {
                        let verdict = if c.passed() {
                            "pass".to_string()
                        } else {
                            for v in &c.violations {
                                details.push(format!("{label}: {v}"));
                            }
                            format!("FAIL ({})", c.violations.len())
                        };
                        (
                            [
                                c.policy.clone(),
                                c.corruption.name().to_string(),
                                c.crash_tick.to_string(),
                                c.wal_records.to_string(),
                                c.truncations.to_string(),
                                verdict,
                            ],
                            c.violations.len(),
                        )
                    }
                    Err(e) => {
                        details.push(format!("{label}: {e}"));
                        (
                            [
                                policy.to_string(),
                                corruption.name().to_string(),
                                "-".to_string(),
                                "-".to_string(),
                                "-".to_string(),
                                "ERROR".to_string(),
                            ],
                            1,
                        )
                    }
                };
            failures += cell_failures;
            t.row(row);
        }
    }
    println!("{t}");
    for d in &details {
        println!("  violation: {d}");
    }

    if failures > 0 {
        return Err(format!("chaos matrix FAILED: {failures} violation(s)"));
    }
    if cells_run == 0 {
        return Err(format!(
            "--cells {:?} matched no cells ({cells_skipped} skipped)",
            filters
        ));
    }
    println!(
        "\nchaos matrix passed: {cells_run} cells recovered byte-identically{}",
        if cells_skipped > 0 {
            format!(" ({cells_skipped} filtered out by --cells)")
        } else {
            String::new()
        }
    );
    Ok(())
}
