//! `parapage chaos`: the crash-recovery matrix as a pre-PR gate.
//!
//! Drives the conformance resume-equivalence oracle over the full grid:
//! every engine policy × every named fault scenario × a set of
//! deterministic crashpoints (fractions of each cell's baseline tick
//! count). Each cell runs the workload once uninterrupted and once under
//! the supervisor with all the cell's crashes injected, and demands a
//! byte-identical [`RunResult`] and trace stream. A corrupted-snapshot
//! section additionally verifies that bit-flipped and truncated snapshots
//! are rejected with typed errors for every policy.
//!
//! Exits non-zero on any divergence, failed recovery, or accepted
//! corruption.

use parapage::prelude::*;

use crate::args::Args;

/// Crashpoints as fractions of each cell's baseline run: early, two
/// mid-run points straddling typical phase transitions, and late.
const CRASH_FRACS: &[f64] = &[0.1, 0.35, 0.6, 0.85];

/// Executes the subcommand.
pub fn exec(args: &Args) -> Result<(), String> {
    let quick = args.flag("quick");
    let p: usize = args.get("p", if quick { 4 } else { 8 })?;
    let k: usize = args.get("k", 8 * p)?;
    let s: u64 = args.get("s", 10)?;
    if !k.is_power_of_two() || k < p {
        return Err(format!("--k {k} must be a power of two >= --p {p}"));
    }
    let seed: u64 = args.get("seed", 42)?;
    let len: usize = args.get("len", if quick { 300 } else { 1200 })?;
    let params = ModelParams::new(p, k, s);

    // Same mixed workload family the conform matrix audits.
    let specs: Vec<SeqSpec> = (0..p)
        .map(|x| match x % 3 {
            0 => SeqSpec::Cyclic {
                width: (k / 8).max(2),
                len,
            },
            1 => SeqSpec::Cyclic { width: k / 2, len },
            _ => SeqSpec::Zipf {
                universe: (k / 2).max(4),
                theta: 0.9,
                len,
            },
        })
        .collect();
    let w = build_workload(&specs, seed);

    let horizon = {
        let mut alloc = DetPar::new(&params);
        run_engine(&mut alloc, w.seqs(), &params, &EngineOpts::default())
            .map_err(|e| format!("clean det-par run failed: {e}"))?
            .makespan
            .max(1)
    };

    println!(
        "chaos matrix: {} ({} requests, crashpoints at {:?} of each baseline)\n",
        params,
        w.total_requests(),
        CRASH_FRACS
    );

    let mut failures = 0usize;

    // 1. Resume-equivalence grid.
    let cells = resume_matrix(w.seqs(), &params, seed, horizon, CRASH_FRACS)?;
    let mut t = Table::new(["policy", "scenario", "ticks", "crashes", "verdict"]);
    let mut details: Vec<String> = Vec::new();
    for c in &cells {
        let verdict = if c.passed() {
            "pass".to_string()
        } else {
            format!("FAIL ({})", c.violations.len())
        };
        if !c.passed() {
            failures += c.violations.len();
            for v in &c.violations {
                details.push(format!("{}/{}: {v}", c.policy, c.scenario));
            }
        }
        t.row([
            c.policy.clone(),
            c.scenario.clone(),
            c.baseline_ticks.to_string(),
            c.crashes.to_string(),
            verdict,
        ]);
    }
    println!("{t}");
    for d in &details {
        println!("  violation: {d}");
    }

    // 2. Corrupted snapshots must be rejected, typed, for every policy.
    println!("\ncorruption rejection (bit flips + truncation, typed errors):");
    for &policy in CONFORM_POLICIES {
        match check_corruption_rejection(policy, w.seqs(), &params, seed) {
            Ok(()) => println!("  {policy}: pass"),
            Err(e) => {
                println!("  {policy}: FAIL — {e}");
                failures += 1;
            }
        }
    }

    if failures > 0 {
        return Err(format!("chaos matrix FAILED: {failures} violation(s)"));
    }
    println!(
        "\nchaos matrix passed: {} cells recovered byte-identically, {} policies reject corruption",
        cells.len(),
        CONFORM_POLICIES.len()
    );
    Ok(())
}
