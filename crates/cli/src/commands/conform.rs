//! `parapage conform`: the conformance oracle as a pre-PR gate.
//!
//! Three sections, each with its own table:
//!
//! 1. **Invariant matrix** — every engine policy under every named fault
//!    scenario, checked for replay determinism, agreement with the naive
//!    reference simulator, stream/result consistency, memory envelopes,
//!    box geometry, and (DET-PAR, clean) the paper's phase/strip structure.
//! 2. **Differential sweep** — the optimized engine vs the reference
//!    simulator, event-for-event, on generated workloads.
//! 3. **Competitive envelope** — measured makespan ratios on Theorem-4
//!    adversarial instances must stay inside a `c·log p` envelope.
//!
//! Exits non-zero on any violation, divergence, or envelope excursion.

use parapage::prelude::*;

use crate::args::Args;
use crate::common::run_named_policy_faults;

/// Executes the subcommand.
pub fn exec(args: &Args) -> Result<(), String> {
    if args.flag("concurrent") {
        return exec_concurrent(args);
    }
    let quick = args.flag("quick");
    let p: usize = args.get("p", 8)?;
    let k: usize = args.get("k", 8 * p)?;
    let s: u64 = args.get("s", 10)?;
    if !k.is_power_of_two() || k < p {
        // The §2 normal form (and the black-box packer's capacity
        // assertion) want a power-of-two budget; insisting here keeps the
        // geometry checker meaningful.
        return Err(format!("--k {k} must be a power of two >= --p {p}"));
    }
    let seed: u64 = args.get("seed", 42)?;
    let len: usize = args.get("len", if quick { 600 } else { 2000 })?;
    let diff: usize = args.get("diff", if quick { 150 } else { 1000 })?;
    let params = ModelParams::new(p, k, s);

    // The matrix workload mirrors the `mixed` family: heterogeneous
    // working-set widths so phases, strips, and partitions all get
    // exercised.
    let specs: Vec<SeqSpec> = (0..p)
        .map(|x| match x % 3 {
            0 => SeqSpec::Cyclic {
                width: (k / 8).max(2),
                len,
            },
            1 => SeqSpec::Cyclic { width: k / 2, len },
            _ => SeqSpec::Zipf {
                universe: (k / 2).max(4),
                theta: 0.9,
                len,
            },
        })
        .collect();
    let w = build_workload(&specs, seed);

    let clean = run_named_policy_faults(
        "det-par",
        &w,
        &params,
        &EngineOpts::default(),
        seed,
        &FaultPlan::none(),
        false,
    )?
    .map_err(|e| format!("clean det-par run failed: {e}"))?;
    let horizon = clean.makespan.max(1);

    println!(
        "conformance oracle: {} ({} requests, fault horizon {})\n",
        params,
        w.total_requests(),
        horizon
    );

    let mut failures = 0usize;

    // 1. Invariant matrix.
    println!("invariant matrix (engine policies x fault scenarios):");
    let reports = conform_matrix(w.seqs(), &params, seed, horizon)?;
    let mut t = Table::new(["policy", "scenario", "mode", "outcome", "events", "verdict"]);
    let mut details: Vec<String> = Vec::new();
    for r in &reports {
        let verdict = if r.passed() {
            "pass".to_string()
        } else {
            format!("FAIL ({})", r.violations.len())
        };
        if !r.passed() {
            failures += r.violations.len();
            for v in &r.violations {
                details.push(format!("{}/{}: {v}", r.policy, r.scenario));
            }
        }
        t.row([
            r.policy.clone(),
            r.scenario.clone(),
            if r.hardened { "hardened" } else { "raw" }.to_string(),
            r.outcome.clone(),
            r.events.to_string(),
            verdict,
        ]);
    }
    println!("{t}");
    for d in &details {
        println!("  violation: {d}");
    }

    // 2. Differential sweep.
    let sweep = differential_sweep(diff, seed);
    println!(
        "differential sweep: {} generated workloads, {} divergences",
        sweep.runs,
        sweep.divergences.len()
    );
    for d in sweep.divergences.iter().take(10) {
        println!("  divergence: {} — {}", d.recipe, d.detail);
    }
    failures += sweep.divergences.len();

    // 3. Competitive envelope.
    let env = competitive_envelope(quick, seed)?;
    println!("\ncompetitive envelope (measured ratio vs c*log p bound):");
    let mut t = Table::new(["policy", "instance", "p", "ratio", "bound", "verdict"]);
    for e in &env.entries {
        t.row([
            e.policy.to_string(),
            e.instance.clone(),
            e.p.to_string(),
            format!("{:.2}", e.ratio),
            format!("{:.2}", e.bound),
            if e.ok() { "pass" } else { "FAIL" }.to_string(),
        ]);
    }
    println!("{t}");
    failures += env.violations().len();

    if failures > 0 {
        return Err(format!("conformance FAILED: {failures} violation(s)"));
    }
    println!("conformance: all checks passed");
    Ok(())
}

/// `parapage conform --concurrent`: the concurrent-substrate sweep.
///
/// Four sections:
///
/// 1. **Schedule exploration (exhaustive)** — DFS over thread
///    interleavings of the core split-ordered list ops, every history
///    checked for linearizability against a sequential set model.
/// 2. **Schedule exploration (random)** — seeded random sampling past the
///    DFS frontier of the deeper scenarios.
/// 3. **Sharded stress cells** — real OS threads hammering a sharded LRU;
///    per-shard ledgers replayed exactly against the sequential policy,
///    aggregate misses checked against the hit/miss envelope.
/// 4. **Sabotage self-checks** — re-enables the seeded
///    dropped-resize-fence bug and *requires* the explorer to catch it,
///    then re-enables the seeded stale-pin-retire bug and *requires* the
///    deterministic epoch drive to expose the slot recycled under a live
///    reader: a harness that cannot fail proves nothing.
fn exec_concurrent(args: &Args) -> Result<(), String> {
    use parapage::cache::concurrent::{sabotage, EpochGc};

    let quick = args.flag("quick");
    let budget: usize = args.get("budget", if quick { 4_000 } else { 24_000 })?;
    let seed: u64 = args.get("seed", 42)?;

    println!("concurrent conformance: schedule exploration budget {budget}\n");
    let mut failures = 0usize;
    let mut details: Vec<String> = Vec::new();

    // 1 + 2. Schedule exploration, exhaustive then random.
    let mut distinct_total = 0usize;
    let mut t = Table::new([
        "scenario",
        "mode",
        "executions",
        "distinct",
        "complete",
        "verdict",
    ]);
    for (mode_name, mode, share) in [
        ("exhaustive", ExploreMode::Exhaustive, budget),
        ("random", ExploreMode::Random { seed }, budget / 4),
    ] {
        for r in explore_all(share, mode) {
            distinct_total += r.distinct;
            if !r.passed() {
                failures += r.violations.len();
                for v in &r.violations {
                    details.push(v.clone());
                }
            }
            t.row([
                r.scenario.clone(),
                mode_name.to_string(),
                r.executions.to_string(),
                r.distinct.to_string(),
                r.complete.to_string(),
                if r.passed() {
                    "pass".to_string()
                } else {
                    format!("FAIL ({})", r.violations.len())
                },
            ]);
        }
    }
    println!("{t}");
    println!("distinct interleavings: {distinct_total}");
    if !quick && distinct_total < 10_000 {
        failures += 1;
        details.push(format!(
            "exploration coverage: only {distinct_total} distinct interleavings (need >= 10000)"
        ));
    }

    // 3. Sharded stress cells.
    println!("\nsharded stress (ledger replay + hit/miss envelope):");
    let ops = if quick { 400 } else { 2_000 };
    let mut t = Table::new(["threads", "capacity", "shards", "ops", "misses", "verdict"]);
    for (threads, capacity, shards) in [(2, 64, 4), (4, 128, 8), (8, 256, 8)] {
        let cell = check_concurrent_cache(threads, ops, capacity, shards, seed);
        if !cell.passed() {
            failures += cell.violations.len();
            for v in &cell.violations {
                details.push(format!("stress {threads}x{ops}/{shards}: {v}"));
            }
        }
        t.row([
            threads.to_string(),
            capacity.to_string(),
            shards.to_string(),
            cell.ops.to_string(),
            cell.misses.to_string(),
            if cell.passed() {
                "pass".to_string()
            } else {
                format!("FAIL ({})", cell.violations.len())
            },
        ]);
    }
    println!("{t}");

    // 4. Sabotage self-check: the harness must catch the seeded bug.
    let grow_fence = scenarios()
        .into_iter()
        .find(|s| s.name == "grow-fence")
        .expect("built-in grow-fence scenario");
    sabotage::set_resize_fence_bug(true);
    let sabotaged = explore(&grow_fence, 400, ExploreMode::Exhaustive);
    sabotage::set_resize_fence_bug(false);
    if sabotaged.violations.is_empty() {
        failures += 1;
        details.push(format!(
            "sabotage self-check: explorer missed the seeded resize-fence bug \
             in {} executions — the harness cannot fail",
            sabotaged.executions
        ));
        println!("\nsabotage self-check: FAIL (seeded bug not caught)");
    } else {
        println!(
            "\nsabotage self-check: pass (seeded resize-fence bug caught in {} \
             of {} executions)",
            sabotaged.violations.len().min(sabotaged.executions),
            sabotaged.executions
        );
    }

    // 4b. Stale-pin retire self-check: with the seeded bug on, a retire
    // under a pin that lags the global epoch by one must hand the slot
    // back on the very next advance, while a reader pinned at the newer
    // epoch is still live; with the bug off the slot must stay in limbo.
    let stale_retire_drive = || {
        let gc = EpochGc::new();
        let stale = gc.pin();
        let _ = gc.try_advance(); // 0 -> 1: pins at current never block
        let reader = gc.pin(); // pinned at 1, "holds" slot 7's index
        gc.retire(&stale, 7);
        drop(stale);
        let freed = gc.try_advance(); // 1 -> 2: not blocked by `reader`
        drop(reader);
        freed.contains(&7)
    };
    sabotage::set_stale_epoch_retire_bug(true);
    let buggy_freed_early = stale_retire_drive();
    sabotage::set_stale_epoch_retire_bug(false);
    let fixed_freed_early = stale_retire_drive();
    if !buggy_freed_early || fixed_freed_early {
        failures += 1;
        details.push(format!(
            "stale-retire self-check: seeded bug freed early = \
             {buggy_freed_early} (want true), fixed binning freed early = \
             {fixed_freed_early} (want false)"
        ));
        println!("stale-retire self-check: FAIL");
    } else {
        println!(
            "stale-retire self-check: pass (seeded stale-pin retire recycles \
             under a live reader; global-epoch binning does not)"
        );
    }

    for d in &details {
        println!("  violation: {d}");
    }
    if failures > 0 {
        return Err(format!(
            "concurrent conformance FAILED: {failures} violation(s)"
        ));
    }
    println!("concurrent conformance: all checks passed");
    Ok(())
}
