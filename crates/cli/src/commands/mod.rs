//! CLI subcommands.

pub mod adversarial;
pub mod analyze;
pub mod audit;
pub mod bench;
pub mod chaos;
pub mod compare;
pub mod conform;
pub mod drive;
pub mod faults;
pub mod gen;
pub mod green;
pub mod profile;
pub mod run;
pub mod serve;

/// Top-level usage text.
pub const USAGE: &str = "\
parapage — online parallel paging simulators (SPAA 2022 reproduction)

USAGE:
  parapage <command> [--flags]

COMMANDS:
  run          run one policy on a workload
                 --policy det-par|rand-par|static|prop-miss|ucp|bb-green|shared-lru
                 --p N --k N --s N --workload mixed|skewed|uniform|fresh|zipf
                 --len N --seed N [--trace FILE] [--gantt] [--compartmentalized]
  compare      run every policy on the same workload (same flags as run)
  adversarial  build a Theorem-4 instance and race policies against the
                 Lemma-8 OPT schedule: --p N --k N [--s N] [--alpha F]
  green        green paging on one sequence: RAND-GREEN / ADAPT-GREEN vs
                 offline OPT: --p N --k N [--seeds N]
  audit        run DET-PAR and audit Lemma-6 well-roundedness:
                 --p N --k N [--slack F] (exits non-zero on violation)
  bench        perf-trajectory benchmark gate: run the fixed suite of
                 engine/sweep hot paths under threads(1) and threads(N),
                 check byte-identical results, and write BENCH_4.json:
                 [--quick] [--threads N] [--seed N] [--out FILE]
                 (exits non-zero on a determinism violation, or on a
                 multi-core full run whose speedup misses the 1.5x gate)
  faults       fault-injection matrix: run one policy raw and hardened
                 under each fault scenario (stalls, latency spikes, memory
                 pressure, chaos) and report makespan degradation vs the
                 clean run (same flags as run)
  conform      conformance oracle: paper-invariant checkers over the engine
                 trace for every policy x fault scenario, a differential
                 engine-vs-reference sweep, and competitive-ratio
                 guardrails: [--quick] [--p N --k N --s N --len N]
                 [--diff N] [--seed N] (exits non-zero on any violation)
                 --concurrent switches to the concurrent-substrate sweep:
                 schedule exploration (exhaustive + random) over the
                 lock-free list ops with linearization checking, sharded
                 stress cells with exact ledger replay, and sabotage
                 self-checks that must catch two seeded concurrency bugs:
                 [--budget N] [--quick] [--seed N]
  chaos        crash-recovery matrix: every policy x fault scenario x
                 deterministic crashpoint, run under the checkpointing
                 supervisor; recovered runs must be byte-identical to
                 uninterrupted ones, corrupted snapshots must be rejected,
                 and a WAL corruption matrix (torn/partial tails,
                 mid-record truncation, bit flips, stale bases) must
                 recover byte-identically with typed truncations:
                 [--quick] [--p N --k N --s N --len N] [--seed N]
                 [--cells SUBSTR[,SUBSTR..]] [--wal]
                 (exits non-zero on any divergence or failed recovery)
                 --net switches to the network chaos matrix: every
                 transport fault kind (partial-writes, write-stall,
                 read-stall, cut-send, cut-recv, trickle) x cut point x
                 tenant count against a live server — after retries every
                 reply stream must be byte-identical to a clean run —
                 plus idle-expiry (checkpointed tenant state restored on
                 re-attach) and load-shedding (typed Busy) cells:
                 [--quick] [--seed N] [--cells SUBSTR[,SUBSTR..]]
  profile      visualize green box profiles (OPT vs RAND-GREEN):
                 --p N --k N [--seed N] [--width N]
  analyze      miss-ratio curves of a trace file: --trace FILE [--max-cap N]
  gen          generate a workload and write it as a trace:
                 --workload NAME --out FILE [--p N --k N --len N --seed N]
  serve        long-lived multi-tenant paging daemon: tenants stream
                 page-request batches over a digest-framed wire protocol,
                 each batch runs under the WAL-checkpointing supervisor
                 (a tenant crash never takes down the process; migration
                 and kill orders are absorbed with byte-identical replies):
                 [--addr 127.0.0.1:7717] [--max-tenants N] [--budget N]
                 [--epoch-ticks N] [--max-retries N] [--read-timeout-ms N]
                 [--idle-ttl-ms N] [--max-conns N]
                 (runs until a client sends Shutdown; idle tenants past
                 the TTL are retired to checkpointed state and restored
                 on re-attach; connections beyond the cap are shed with
                 a typed Busy)
  drive        load driver: replay deterministic request batches from many
                 concurrent tenants and report throughput and latency
                 percentiles; spawns an in-process server when --addr is
                 absent: [--addr HOST:PORT] [--requests N] [--tenants N]
                 [--batches N] [--p N --k N --s N] [--policy NAME]
                 [--seed N] [--shards N] [--fault KIND] [--fault-at N]
                 [--expect-clean]
                 (tenants drive through the resilient client — reconnect,
                 re-attach, replay — and report recovery counters;
                 --fault injects a deterministic transport fault that the
                 retries must absorb; --expect-clean exits non-zero on
                 any unrecovered error or tenant restart — the CI
                 serve-smoke gate)
  help         this text
";
