//! `parapage bench`: the perf-trajectory benchmark gate.
//!
//! Runs the fixed recipe in [`parapage_bench::suite`] — engine, sweep,
//! checkpoint, server, concurrent, and single-thread `ops/*` hot paths,
//! each once under `threads(1)` and once at the requested width — and
//! emits `BENCH_5.json` (wall time, runs/sec, speedup vs the sequential
//! leg, per-entry determinism verdicts).
//!
//! Exit is non-zero when:
//!
//! * any entry's two legs diverge (the pool's determinism contract is
//!   broken);
//! * the speedup gate is enforced (multi-core host, full recipe) and the
//!   aggregate speedup falls below the bar;
//! * an `ops/*` entry's single-thread throughput drops below its pinned
//!   floor ([`parapage_bench::suite::OPS_FLOORS`], release builds only);
//! * `--baseline <BENCH_n.json>` was given, the recipe is full, and the
//!   aggregate single-thread improvement over the shared entries falls
//!   below [`parapage_bench::suite::BASELINE_IMPROVEMENT_GATE`].
//!
//! `--profile` additionally runs one instrumented det-par engine run plus
//! a pool grid and writes the coarse per-phase timer breakdown (alloc /
//! policy / cache / pool / other) as `<out>.profile.json`.

use parapage_bench::profile::profile_run;
use parapage_bench::suite::{parse_baseline, run_suite, BASELINE_IMPROVEMENT_GATE, SPEEDUP_GATE};
use rayon::pool;

use crate::args::Args;

/// Stable identifier of this benchmark generation: bump the suffix when
/// the recipe changes shape so trajectories stay comparable.
const BENCH_ID: &str = "BENCH_5";

/// Executes the subcommand.
pub fn exec(args: &Args) -> Result<(), String> {
    let quick = args.flag("quick");
    let profile = args.flag("profile");
    let baseline_path = args.opt("baseline");
    let seed: u64 = args.get("seed", 42)?;
    let threads: usize = args.get("threads", pool::current_threads())?;
    let out = args
        .opt("out")
        .unwrap_or_else(|| format!("{BENCH_ID}.json"));
    if threads < 1 {
        return Err("--threads must be at least 1".into());
    }

    println!(
        "benchmark suite ({}, seed {seed}): threads(1) vs threads({threads}) on {} core(s)\n",
        if quick { "quick recipe" } else { "full recipe" },
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );

    let report = run_suite(quick, seed, threads);

    let mut t = parapage::prelude::Table::new([
        "entry",
        "runs",
        "secs @1",
        "secs @N",
        "runs/s @1",
        "runs/s @N",
        "speedup",
        "deterministic",
    ]);
    for e in &report.entries {
        t.row([
            e.name.to_string(),
            e.runs.to_string(),
            format!("{:.3}", e.secs_base),
            format!("{:.3}", e.secs_par),
            format!("{:.1}", e.runs as f64 / e.secs_base.max(1e-9)),
            format!("{:.1}", e.runs as f64 / e.secs_par.max(1e-9)),
            format!("{:.2}x", e.speedup()),
            if e.deterministic() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{t}");

    let ckpt_bytes = |name: &str| {
        report
            .entries
            .iter()
            .find(|e| e.name == name)
            .and_then(|e| e.bytes)
    };
    if let (Some(full), Some(wal)) = (
        ckpt_bytes("checkpoint/full-snapshot"),
        ckpt_bytes("checkpoint/wal-delta"),
    ) {
        println!(
            "checkpoint payload per run: full snapshots {full} bytes, WAL deltas {wal} bytes \
             ({:.1}% of full)",
            wal as f64 / full.max(1) as f64 * 100.0
        );
    }

    // Baseline comparison: parse the prior generation's single-thread
    // rates and report per-entry improvement over the shared entries.
    let comparison = match &baseline_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading --baseline {path}: {e}"))?;
            let (base_id, base_rates) = parse_baseline(&text)?;
            let cmp = report.compare_baseline(&base_id, &base_rates);
            if cmp.entries.is_empty() {
                return Err(format!(
                    "--baseline {path} ({base_id}) shares no entries with this recipe"
                ));
            }
            let mut bt = parapage::prelude::Table::new([
                "entry",
                "base runs/s @1",
                "runs/s @1",
                "improvement",
            ]);
            for d in &cmp.entries {
                bt.row([
                    d.name.clone(),
                    format!("{:.1}", d.base_rate),
                    format!("{:.1}", d.new_rate),
                    format!("{:.2}x", d.ratio()),
                ]);
            }
            println!("single-thread improvement vs {base_id}:");
            println!("{bt}");
            println!(
                "aggregate single-thread improvement (geomean over {} shared entries): {:.2}x",
                cmp.entries.len(),
                cmp.aggregate_improvement()
            );
            Some(cmp)
        }
        None => None,
    };

    let json = report.to_json_with(BENCH_ID, comparison.as_ref());
    std::fs::write(&out, &json).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "aggregate speedup (sweep entries): {:.2}x — wrote {out}",
        report.aggregate_speedup()
    );

    if profile {
        let prof = profile_run(quick, seed);
        let prof_out = format!("{}.profile.json", out.trim_end_matches(".json"));
        std::fs::write(&prof_out, prof.to_json(quick, seed))
            .map_err(|e| format!("writing {prof_out}: {e}"))?;
        println!(
            "phase profile ({} engine events): alloc {:.1}ms, policy {:.1}ms, cache {:.1}ms, \
             pool {:.1}ms, other {:.1}ms — wrote {prof_out}",
            prof.engine_events,
            prof.alloc_secs * 1e3,
            prof.policy_secs * 1e3,
            prof.cache_secs * 1e3,
            prof.pool_secs * 1e3,
            prof.other_secs * 1e3,
        );
    }

    if !report.deterministic() {
        return Err(
            "determinism violation: a suite entry produced different results under \
             threads(1) and the parallel leg"
                .into(),
        );
    }
    // The ops floors are wall-clock assertions on optimized code; a debug
    // CLI build records the rates but cannot meaningfully enforce them.
    if cfg!(debug_assertions) {
        println!("ops floors: skipped (debug build)");
    } else {
        let failures = report.ops_floor_failures();
        if failures.is_empty() {
            println!("ops floors: pass");
        } else {
            return Err(format!(
                "ops floor regression: {}",
                failures
                    .iter()
                    .map(|(name, rate, floor)| format!("{name} {rate:.0}/s < floor {floor:.0}/s"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
    }
    if let Some(cmp) = &comparison {
        let enforced = !quick;
        if !enforced {
            println!("baseline gate: waived, recorded only (quick recipe)");
        } else if cmp.gate_passed(enforced) {
            println!(
                "baseline gate: {:.2}x >= {BASELINE_IMPROVEMENT_GATE}x vs {} — pass",
                cmp.aggregate_improvement(),
                cmp.baseline_id
            );
        } else {
            return Err(format!(
                "baseline gate FAILED: aggregate single-thread improvement {:.2}x < \
                 {BASELINE_IMPROVEMENT_GATE}x vs {}",
                cmp.aggregate_improvement(),
                cmp.baseline_id
            ));
        }
    }
    if report.gate_enforced() {
        if report.gate_passed() {
            println!(
                "speedup gate: {:.2}x >= {SPEEDUP_GATE}x — pass",
                report.aggregate_speedup()
            );
        } else {
            return Err(format!(
                "speedup gate FAILED: aggregate {:.2}x < {SPEEDUP_GATE}x on a \
                 {}-core host",
                report.aggregate_speedup(),
                report.host_cores
            ));
        }
    } else {
        println!(
            "speedup gate: waived, recorded only ({})",
            report.gate_waived_reason().unwrap_or("unknown")
        );
    }
    Ok(())
}
