//! `parapage bench`: the perf-trajectory benchmark gate.
//!
//! Runs the fixed recipe in [`parapage_bench::suite`] — engine and sweep
//! hot paths, each once under `threads(1)` and once at the requested
//! width — and emits `BENCH_4.json` (wall time, runs/sec, speedup vs the
//! sequential leg, per-entry determinism verdicts).
//!
//! Exit is non-zero when any entry's two legs diverge (the pool's
//! determinism contract is broken) or when the speedup gate is enforced
//! (multi-core host, full recipe) and the aggregate speedup falls below
//! the bar.

use parapage_bench::suite::{run_suite, SPEEDUP_GATE};
use rayon::pool;

use crate::args::Args;

/// Stable identifier of this benchmark generation: bump the suffix when
/// the recipe changes shape so trajectories stay comparable.
const BENCH_ID: &str = "BENCH_4";

/// Executes the subcommand.
pub fn exec(args: &Args) -> Result<(), String> {
    let quick = args.flag("quick");
    let seed: u64 = args.get("seed", 42)?;
    let threads: usize = args.get("threads", pool::current_threads())?;
    let out = args
        .opt("out")
        .unwrap_or_else(|| format!("{BENCH_ID}.json"));
    if threads < 1 {
        return Err("--threads must be at least 1".into());
    }

    println!(
        "benchmark suite ({}, seed {seed}): threads(1) vs threads({threads}) on {} core(s)\n",
        if quick { "quick recipe" } else { "full recipe" },
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );

    let report = run_suite(quick, seed, threads);

    let mut t = parapage::prelude::Table::new([
        "entry",
        "runs",
        "secs @1",
        "secs @N",
        "runs/s @1",
        "runs/s @N",
        "speedup",
        "deterministic",
    ]);
    for e in &report.entries {
        t.row([
            e.name.to_string(),
            e.runs.to_string(),
            format!("{:.3}", e.secs_base),
            format!("{:.3}", e.secs_par),
            format!("{:.1}", e.runs as f64 / e.secs_base.max(1e-9)),
            format!("{:.1}", e.runs as f64 / e.secs_par.max(1e-9)),
            format!("{:.2}x", e.speedup()),
            if e.deterministic() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{t}");

    let ckpt_bytes = |name: &str| {
        report
            .entries
            .iter()
            .find(|e| e.name == name)
            .and_then(|e| e.bytes)
    };
    if let (Some(full), Some(wal)) = (
        ckpt_bytes("checkpoint/full-snapshot"),
        ckpt_bytes("checkpoint/wal-delta"),
    ) {
        println!(
            "checkpoint payload per run: full snapshots {full} bytes, WAL deltas {wal} bytes \
             ({:.1}% of full)",
            wal as f64 / full.max(1) as f64 * 100.0
        );
    }

    let json = report.to_json(BENCH_ID);
    std::fs::write(&out, &json).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "aggregate speedup (sweep entries): {:.2}x — wrote {out}",
        report.aggregate_speedup()
    );

    if !report.deterministic() {
        return Err(
            "determinism violation: a suite entry produced different results under \
             threads(1) and the parallel leg"
                .into(),
        );
    }
    if report.gate_enforced() {
        if report.gate_passed() {
            println!(
                "speedup gate: {:.2}x >= {SPEEDUP_GATE}x — pass",
                report.aggregate_speedup()
            );
        } else {
            return Err(format!(
                "speedup gate FAILED: aggregate {:.2}x < {SPEEDUP_GATE}x on a \
                 {}-core host",
                report.aggregate_speedup(),
                report.host_cores
            ));
        }
    } else {
        println!(
            "speedup gate: waived, recorded only ({})",
            report.gate_waived_reason().unwrap_or("unknown")
        );
    }
    Ok(())
}
