//! `parapage run`: one policy, one workload, full metrics.

use parapage::prelude::*;

use crate::args::Args;
use crate::common::{model_from, run_named_policy, workload_from};

/// Executes the subcommand.
pub fn exec(args: &Args) -> Result<(), String> {
    let params = model_from(args)?;
    let w = workload_from(args, &params)?;
    let policy = args.opt("policy").unwrap_or_else(|| "det-par".into());
    let seed: u64 = args.get("seed", 42)?;
    let want_gantt = args.flag("gantt");
    let opts = EngineOpts {
        record_timelines: want_gantt,
        compartmentalized: args.flag("compartmentalized"),
        ..Default::default()
    };

    let res = run_named_policy(&policy, &w, &params, &opts, seed)?;
    let lb = per_proc_bound(w.seqs(), params.k, params.s);

    println!(
        "policy {policy} on {} ({} requests)\n",
        params,
        w.total_requests()
    );
    let mut t = Table::new(["metric", "value"]);
    t.row(["makespan", &res.makespan.to_string()]);
    t.row(["mean completion", &format!("{:.1}", res.mean_completion())]);
    t.row(["per-proc lower bound", &lb.to_string()]);
    t.row([
        "makespan / bound",
        &format!("{:.3}", res.makespan as f64 / lb.max(1) as f64),
    ]);
    t.row(["hits", &res.stats.hits.to_string()]);
    t.row(["misses", &res.stats.misses.to_string()]);
    t.row([
        "miss ratio",
        &format!("{:.2}%", 100.0 * res.stats.miss_ratio()),
    ]);
    t.row(["peak memory", &res.peak_memory.to_string()]);
    t.row(["memory integral", &res.memory_integral.to_string()]);
    t.row(["grants issued", &res.grants_issued.to_string()]);
    println!("{t}");

    if want_gantt {
        if let Some(tls) = &res.timelines {
            println!("allocation Gantt (height, log-scaled to k={}):", params.k);
            print!("{}", gantt(tls, res.makespan, params.k, 72));
        }
    }
    Ok(())
}
