//! `parapage drive`: the load driver — replay deterministic page-request
//! batches against a running server from many concurrent tenants and
//! report throughput and per-batch latency percentiles.
//!
//! With `--addr HOST:PORT` it drives an already-running `parapage serve`;
//! with `--spawn` (the default when `--addr` is absent) it starts an
//! in-process server on an ephemeral loopback port, drives it, and shuts
//! it down — one command for smoke tests and CI.
//!
//! Flags: `--requests N` (total, default 100000), `--tenants N`,
//! `--batches N` (per tenant), `--p/--k/--s`, `--policy NAME`, `--seed N`,
//! `--shards N`, `--fault KIND` (inject a deterministic transport fault —
//! `partial-writes`, `write-stall`, `read-stall`, `cut-send`, `cut-recv`,
//! `trickle` — into every tenant's first connection; the resilient client
//! must absorb it), `--fault-at N` (fault byte offset), `--expect-clean`
//! (exit non-zero on any *unrecovered* error or tenant restart — the
//! serve-smoke gate; recovered retries are reported but fine).

use parapage::conform::NetFaultKind;
use parapage_server::drive::{drive, DriveCfg};
use parapage_server::server::{serve, ServeOpts};

use crate::args::Args;

/// Executes the subcommand.
pub fn exec(args: &Args) -> Result<(), String> {
    let defaults = DriveCfg::default();
    let fault = match args.opt("fault") {
        Some(name) => Some(NetFaultKind::parse(&name).ok_or_else(|| {
            format!(
                "--fault {name}: unknown kind (expected one of {})",
                NetFaultKind::ALL
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?),
        None => None,
    };
    let mut cfg = DriveCfg {
        tenants: args.get("tenants", defaults.tenants)?,
        batches: args.get("batches", defaults.batches)?,
        requests: args.get("requests", defaults.requests)?,
        p: args.get("p", defaults.p)?,
        k: args.get("k", defaults.k)?,
        s: args.get("s", defaults.s)?,
        policy: args
            .opt("policy")
            .unwrap_or_else(|| defaults.policy.clone()),
        seed: args.get("seed", defaults.seed)?,
        shards: args.get("shards", defaults.shards)?,
        fault,
        fault_at: args.get("fault-at", defaults.fault_at)?,
        ..defaults
    };
    let expect_clean = args.flag("expect-clean");
    let spawn = args.flag("spawn");

    let addr = args.opt("addr");
    let local = match &addr {
        Some(a) => {
            if spawn {
                return Err("--spawn and --addr are mutually exclusive".into());
            }
            cfg.addr = a.parse().map_err(|e| format!("--addr {a}: {e}"))?;
            None
        }
        None => {
            // No server given: spawn one in-process on an ephemeral port.
            let handle = serve("127.0.0.1:0", ServeOpts::default())
                .map_err(|e| format!("spawn server: {e}"))?;
            cfg.addr = handle.addr();
            cfg.shutdown = true;
            println!("parapage drive: spawned server on {}", cfg.addr);
            Some(handle)
        }
    };

    println!(
        "parapage drive: {} tenants x {} batches of {} requests/seq \
         ({} policy, p={} k={} s={}) against {}",
        cfg.tenants,
        cfg.batches,
        cfg.seq_len(),
        cfg.policy,
        cfg.p,
        cfg.k,
        cfg.s,
        cfg.addr
    );
    let report = drive(&cfg);
    if let Some(handle) = local {
        handle.join();
    }
    println!("{}", report.summary_line());
    println!("{}", report.retry_line());
    if let Some(stats) = report.stats {
        println!(
            "server: {} tenants, {} batches, {} requests, {} restarts, \
             {} migrations, {} WAL records, {} checkpoint bytes, \
             {} idle expiries, {} shed connections",
            stats.tenants,
            stats.batches,
            stats.requests,
            stats.restarts,
            stats.migrations,
            stats.wal_records,
            stats.checkpoint_bytes,
            stats.expiries,
            stats.shed
        );
    }

    let expected_batches = (cfg.tenants as u64) * cfg.batches;
    if report.protocol_errors > 0 {
        return Err(format!(
            "{} protocol errors over the drive",
            report.protocol_errors
        ));
    }
    if report.batches != expected_batches {
        return Err(format!(
            "only {}/{} batches acknowledged",
            report.batches, expected_batches
        ));
    }
    if expect_clean {
        match report.stats {
            Some(s) if s.restarts > 0 => {
                return Err(format!(
                    "--expect-clean: server absorbed {} tenant restarts",
                    s.restarts
                ))
            }
            Some(_) => {}
            None => return Err("--expect-clean: stats unavailable".into()),
        }
    }
    Ok(())
}
