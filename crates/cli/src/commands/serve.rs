//! `parapage serve`: the long-lived multi-tenant paging daemon.
//!
//! Binds a TCP listener and serves the digest-framed wire protocol: each
//! connected tenant streams page-request batches through its own
//! supervised, WAL-checkpointed engine. Runs until a client sends
//! `Shutdown`, then prints the final operational counters.
//!
//! Flags: `--addr HOST:PORT` (default `127.0.0.1:7717`), `--max-tenants N`,
//! `--budget N` (per-tenant cumulative request budget, default unlimited),
//! `--epoch-ticks N` (WAL checkpoint cadence), `--max-retries N` (crash
//! budget per batch), `--read-timeout-ms N` (per-session read deadline, 0
//! to block forever), `--idle-ttl-ms N` (retire idle tenants to
//! checkpointed state after N ms; 0 disables), `--max-conns N`
//! (connection cap; beyond it new connections are shed with a typed
//! `Busy`).

use std::time::Duration;

use parapage_server::server::{serve, ServeOpts};

use crate::args::Args;

/// Executes the subcommand.
pub fn exec(args: &Args) -> Result<(), String> {
    let addr = args
        .opt("addr")
        .unwrap_or_else(|| "127.0.0.1:7717".to_string());
    let defaults = ServeOpts::default();
    let default_read_ms = defaults
        .read_timeout
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let read_timeout_ms: u64 = args.get("read-timeout-ms", default_read_ms)?;
    let idle_ttl_ms: u64 = args.get("idle-ttl-ms", 0)?;
    let opts = ServeOpts {
        max_tenants: args.get("max-tenants", defaults.max_tenants)?,
        request_budget: args.get("budget", defaults.request_budget)?,
        epoch_ticks: args.get("epoch-ticks", defaults.epoch_ticks)?,
        max_retries: args.get("max-retries", defaults.max_retries)?,
        read_timeout: (read_timeout_ms > 0).then(|| Duration::from_millis(read_timeout_ms)),
        idle_ttl: (idle_ttl_ms > 0).then(|| Duration::from_millis(idle_ttl_ms)),
        max_conns: args.get("max-conns", defaults.max_conns)?,
        busy_retry_ms: defaults.busy_retry_ms,
    };
    let handle = serve(addr.as_str(), opts).map_err(|e| format!("bind {addr}: {e}"))?;
    println!(
        "parapage serve: listening on {} (max {} tenants, epoch every {} ticks)",
        handle.addr(),
        opts.max_tenants,
        opts.epoch_ticks
    );
    let stats = handle.join();
    println!(
        "parapage serve: shut down | {} tenants, {} batches, {} requests, \
         {} restarts, {} migrations, {} WAL records, {} checkpoint bytes, \
         {} idle expiries, {} shed connections",
        stats.tenants,
        stats.batches,
        stats.requests,
        stats.restarts,
        stats.migrations,
        stats.wal_records,
        stats.checkpoint_bytes,
        stats.expiries,
        stats.shed
    );
    Ok(())
}
