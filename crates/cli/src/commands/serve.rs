//! `parapage serve`: the long-lived multi-tenant paging daemon.
//!
//! Binds a TCP listener and serves the digest-framed wire protocol: each
//! connected tenant streams page-request batches through its own
//! supervised, WAL-checkpointed engine. Runs until a client sends
//! `Shutdown`, then prints the final operational counters.
//!
//! Flags: `--addr HOST:PORT` (default `127.0.0.1:7717`), `--max-tenants N`,
//! `--budget N` (per-tenant cumulative request budget, default unlimited),
//! `--epoch-ticks N` (WAL checkpoint cadence), `--max-retries N` (crash
//! budget per batch).

use parapage_server::server::{serve, ServeOpts};

use crate::args::Args;

/// Executes the subcommand.
pub fn exec(args: &Args) -> Result<(), String> {
    let addr = args
        .opt("addr")
        .unwrap_or_else(|| "127.0.0.1:7717".to_string());
    let defaults = ServeOpts::default();
    let opts = ServeOpts {
        max_tenants: args.get("max-tenants", defaults.max_tenants)?,
        request_budget: args.get("budget", defaults.request_budget)?,
        epoch_ticks: args.get("epoch-ticks", defaults.epoch_ticks)?,
        max_retries: args.get("max-retries", defaults.max_retries)?,
    };
    let handle = serve(addr.as_str(), opts).map_err(|e| format!("bind {addr}: {e}"))?;
    println!(
        "parapage serve: listening on {} (max {} tenants, epoch every {} ticks)",
        handle.addr(),
        opts.max_tenants,
        opts.epoch_ticks
    );
    let stats = handle.join();
    println!(
        "parapage serve: shut down | {} tenants, {} batches, {} requests, \
         {} restarts, {} migrations, {} WAL records, {} checkpoint bytes",
        stats.tenants,
        stats.batches,
        stats.requests,
        stats.restarts,
        stats.migrations,
        stats.wal_records,
        stats.checkpoint_bytes
    );
    Ok(())
}
