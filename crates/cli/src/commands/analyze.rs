//! `parapage analyze`: per-processor miss-ratio curves of a trace file.

use parapage::prelude::*;

use crate::args::Args;

/// Executes the subcommand.
pub fn exec(args: &Args) -> Result<(), String> {
    let path = args.require("trace")?;
    let max_cap: usize = args.get("max-cap", 256)?;
    let s: u64 = args.get("s", 16)?;
    let w = parapage::workloads::trace::load(std::path::Path::new(&path))
        .map_err(|e| format!("--trace {path}: {e}"))?;

    println!(
        "trace `{path}`: {} processors, {} requests\n",
        w.p(),
        w.total_requests()
    );
    let mut t = Table::new([
        "proc",
        "requests",
        "distinct",
        "belady@max",
        "lru@max",
        "curve (cap 1..max)",
    ]);
    for (x, seq) in w.seqs().iter().enumerate() {
        let curve = miss_curve(seq, max_cap);
        let samples: Vec<f64> = (1..=16)
            .map(|i| {
                let c = (max_cap * i / 16).max(1);
                curve.misses(c) as f64
            })
            .collect();
        t.row([
            format!("P{x}"),
            seq.len().to_string(),
            curve.distinct_pages().to_string(),
            min_misses(seq, max_cap).to_string(),
            curve.misses(max_cap).to_string(),
            sparkline(&samples),
        ]);
    }
    println!("{t}");
    println!(
        "service time at full capacity (hit=1, miss={s}): {:?}",
        w.seqs()
            .iter()
            .map(|q| miss_curve(q, max_cap).service_time(max_cap, s))
            .collect::<Vec<_>>()
    );
    Ok(())
}
