//! `parapage audit`: run DET-PAR with timeline recording and audit the
//! well-roundedness property (Lemma 6) on the actual execution.

use parapage::prelude::*;

use crate::args::Args;
use crate::common::{model_from, workload_from};

/// Executes the subcommand.
pub fn exec(args: &Args) -> Result<(), String> {
    let params = model_from(args)?;
    let w = workload_from(args, &params)?;
    let slack: f64 = args.get("slack", 4.0)?;

    let mut det = DetPar::new(&params);
    let opts = EngineOpts {
        record_timelines: true,
        ..Default::default()
    };
    let res = run_engine(&mut det, w.seqs(), &params, &opts).map_err(|e| e.to_string())?;
    let report = check_well_rounded(
        res.timelines.as_ref().unwrap(),
        &res.completions,
        det.phases(),
        &params,
        slack,
    );

    println!(
        "DET-PAR on {} — makespan {}, peak memory {} ({:.2}k)\n",
        params,
        res.makespan,
        res.peak_memory,
        res.peak_memory as f64 / params.k as f64
    );
    let mut t = Table::new(["phase", "start", "base height", "roster"]);
    for (i, ph) in det.phases().iter().enumerate() {
        t.row([
            i.to_string(),
            ph.start.to_string(),
            ph.base_height.to_string(),
            ph.roster_len.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "well-rounded: {}   max gap factor {:.3} (× the Lemma-6 period; slack {slack})",
        report.ok, report.max_gap_factor
    );
    for v in report.violations.iter().take(10) {
        println!("  violation: {v}");
    }
    if !report.ok {
        return Err("well-roundedness audit failed".into());
    }
    Ok(())
}
