//! Shared helpers for the CLI subcommands: workload construction and policy
//! dispatch by name.

use parapage::prelude::*;

use crate::args::Args;

/// Model parameters from `--p/--k/--s` (defaults 8/128/16).
pub fn model_from(args: &Args) -> Result<ModelParams, String> {
    let p: usize = args.get("p", 8)?;
    let k: usize = args.get("k", 16 * p)?;
    let s: u64 = args.get("s", 16)?;
    if k < p {
        return Err(format!("--k {k} must be at least --p {p}"));
    }
    if s < 2 {
        return Err("--s must be at least 2".into());
    }
    Ok(ModelParams::new(p, k, s))
}

/// Builds the named workload family (`--workload`, default `mixed`).
pub fn workload_from(args: &Args, params: &ModelParams) -> Result<Workload, String> {
    let name = args.opt("workload").unwrap_or_else(|| "mixed".into());
    let len: usize = args.get("len", 5000)?;
    let seed: u64 = args.get("seed", 42)?;
    if let Some(path) = args.opt("trace") {
        return parapage::workloads::trace::load(std::path::Path::new(&path))
            .map_err(|e| format!("--trace {path}: {e}"));
    }
    let (p, k) = (params.p, params.k);
    let specs: Vec<SeqSpec> = match name.as_str() {
        "mixed" => (0..p)
            .map(|x| match x % 4 {
                0 => SeqSpec::Cyclic {
                    width: (k / 16).max(2),
                    len,
                },
                1 => SeqSpec::Cyclic { width: k / 2, len },
                2 => SeqSpec::Zipf {
                    universe: (k / 2).max(4),
                    theta: 0.9,
                    len,
                },
                _ => SeqSpec::Phased {
                    phases: vec![((k / 16).max(2), len / 2), (k / 2, len - len / 2)],
                },
            })
            .collect(),
        "skewed" => (0..p)
            .map(|x| {
                if x == 0 {
                    SeqSpec::Cyclic {
                        width: 3 * k / 4,
                        len,
                    }
                } else {
                    SeqSpec::Cyclic { width: 4, len }
                }
            })
            .collect(),
        "uniform" => (0..p)
            .map(|_| SeqSpec::Uniform {
                universe: (2 * k / p).max(2),
                len,
            })
            .collect(),
        "fresh" => (0..p).map(|_| SeqSpec::Fresh { len }).collect(),
        "zipf" => (0..p)
            .map(|_| SeqSpec::Zipf {
                universe: k,
                theta: 0.9,
                len,
            })
            .collect(),
        other => {
            return Err(format!(
                "unknown --workload `{other}` (mixed|skewed|uniform|fresh|zipf, \
                 or --trace FILE)"
            ))
        }
    };
    Ok(build_workload(&specs, seed))
}

/// Runs the named policy (`det-par`, `rand-par`, `static`, `prop-miss`,
/// `ucp`, `bb-green`, `shared-lru`) on the workload.
pub fn run_named_policy(
    name: &str,
    w: &Workload,
    params: &ModelParams,
    opts: &EngineOpts,
    seed: u64,
) -> Result<RunResult, String> {
    if name == "shared-lru" {
        return Ok(run_shared_lru(w.seqs(), params.k, params.s));
    }
    run_named_policy_faults(name, w, params, opts, seed, &FaultPlan::none(), false)?
        .map_err(|e| format!("policy `{name}`: {e}"))
}

/// Runs a named *box* policy under a fault plan, optionally wrapped in
/// [`HardenedAllocator`] (budget = `k`, so the wrapper reacts to pressure
/// events instead of tripping the engine's limit).
///
/// The outer `Err(String)` is a usage error (unknown policy name, or
/// `shared-lru`, which runs outside the box engine and takes no faults);
/// the inner `Result` is the run outcome, with [`EngineError`] reported as
/// data so callers like the fault matrix can tabulate failures.
pub fn run_named_policy_faults(
    name: &str,
    w: &Workload,
    params: &ModelParams,
    opts: &EngineOpts,
    seed: u64,
    plan: &FaultPlan,
    hardened: bool,
) -> Result<Result<RunResult, EngineError>, String> {
    macro_rules! launch {
        ($alloc:expr) => {{
            let mut a = $alloc;
            if hardened {
                let mut h = HardenedAllocator::new(a, params.k);
                run_engine_faults(&mut h, w.seqs(), params, opts, plan)
            } else {
                run_engine_faults(&mut a, w.seqs(), params, opts, plan)
            }
        }};
    }
    let res = match name {
        "det-par" => launch!(DetPar::new(params)),
        "rand-par" => launch!(RandPar::new(params, seed)),
        "static" => launch!(StaticPartition::new(params)),
        "prop-miss" => launch!(PropMissPartition::new(params)),
        "ucp" => launch!(UcpPartition::new(params)),
        "bb-green" => {
            let pagers: Vec<RandGreen> = (0..params.p as u64)
                .map(|i| RandGreen::new(params, seed ^ i))
                .collect();
            launch!(BlackboxGreenPacker::new(params, pagers))
        }
        "shared-lru" => {
            return Err("`shared-lru` runs outside the box engine (no fault injection)".into())
        }
        other => {
            return Err(format!(
                "unknown --policy `{other}` (det-par|rand-par|static|prop-miss|\
                 ucp|bb-green|shared-lru)"
            ))
        }
    };
    Ok(res)
}

/// All policy names, for `compare`.
pub const ALL_POLICIES: &[&str] = &[
    "det-par",
    "rand-par",
    "static",
    "prop-miss",
    "ucp",
    "bb-green",
    "shared-lru",
];
