//! Tiny hand-rolled flag parser (no external dependency): `--key value`
//! pairs plus boolean `--flag`s, with typed accessors and an unknown-flag
//! check.

use std::collections::HashMap;

/// Parsed command-line flags.
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
    used: std::cell::RefCell<Vec<String>>,
}

impl Args {
    /// Parses `argv` (already stripped of program name and subcommand).
    ///
    /// Tokens starting with `--` followed by a non-`--` token are key/value
    /// pairs; a `--token` followed by another `--token` (or the end) is a
    /// boolean flag.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let tok = &argv[i];
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, found `{tok}`"))?;
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                values.insert(key.to_string(), argv[i + 1].clone());
                i += 2;
            } else {
                flags.push(key.to_string());
                i += 1;
            }
        }
        Ok(Args {
            values,
            flags,
            used: std::cell::RefCell::new(Vec::new()),
        })
    }

    /// Typed value with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        self.used.borrow_mut().push(key.to_string());
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse `{v}`")),
        }
    }

    /// Required string value.
    pub fn require(&self, key: &str) -> Result<String, String> {
        self.used.borrow_mut().push(key.to_string());
        self.values
            .get(key)
            .cloned()
            .ok_or_else(|| format!("missing required --{key}"))
    }

    /// Optional string value.
    pub fn opt(&self, key: &str) -> Option<String> {
        self.used.borrow_mut().push(key.to_string());
        self.values.get(key).cloned()
    }

    /// Boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        self.used.borrow_mut().push(key.to_string());
        self.flags.iter().any(|f| f == key)
    }

    /// Errors on any flag the command never consulted.
    pub fn finish(&self) -> Result<(), String> {
        let used = self.used.borrow();
        for k in self.values.keys().chain(self.flags.iter()) {
            if !used.iter().any(|u| u == k) {
                return Err(format!("unknown flag --{k}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_pairs_and_flags() {
        let a = Args::parse(&argv("--p 8 --gantt --k 64")).unwrap();
        assert_eq!(a.get("p", 0usize).unwrap(), 8);
        assert_eq!(a.get("k", 0usize).unwrap(), 64);
        assert!(a.flag("gantt"));
        assert!(!a.flag("csv"));
        assert!(a.finish().is_ok());
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(&[]).unwrap();
        assert_eq!(a.get("s", 16u64).unwrap(), 16);
    }

    #[test]
    fn rejects_unknown_flags() {
        let a = Args::parse(&argv("--bogus 1")).unwrap();
        let _ = a.get("p", 0usize);
        assert!(a.finish().is_err());
    }

    #[test]
    fn rejects_malformed_tokens() {
        assert!(Args::parse(&argv("p 8")).is_err());
    }

    #[test]
    fn require_and_opt() {
        let a = Args::parse(&argv("--out file.trace")).unwrap();
        assert_eq!(a.require("out").unwrap(), "file.trace");
        assert!(a.opt("missing").is_none());
        assert!(a.require("missing").is_err());
    }
}
