//! `parapage` — command-line interface to the parallel paging simulators.
//!
//! ```text
//! parapage run         --policy det-par --p 8 --k 128 --workload mixed [--gantt]
//! parapage compare     --p 8 --k 128 --workload skewed
//! parapage adversarial --p 32 --k 128 [--alpha 0.05]
//! parapage bench       [--quick] [--threads N] [--out BENCH_4.json]
//! parapage faults      --policy det-par --p 8 --k 128 --workload mixed
//! parapage green       --p 8 --k 64 --workload mixed [--seeds 8]
//! parapage analyze     --trace FILE [--max-cap 256]
//! parapage gen         --workload mixed --p 8 --k 128 --out FILE
//! parapage serve       [--addr 127.0.0.1:7717] [--max-tenants 64]
//! parapage drive       [--requests 100000] [--tenants 4] [--expect-clean]
//! ```
//!
//! Every subcommand prints an aligned table; see `parapage help` for flags.

mod args;
mod commands;
mod common;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::from(2);
    };
    let parsed = match args::Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "run" => commands::run::exec(&parsed),
        "compare" => commands::compare::exec(&parsed),
        "adversarial" => commands::adversarial::exec(&parsed),
        "audit" => commands::audit::exec(&parsed),
        "bench" => commands::bench::exec(&parsed),
        "chaos" => commands::chaos::exec(&parsed),
        "conform" => commands::conform::exec(&parsed),
        "faults" => commands::faults::exec(&parsed),
        "green" => commands::green::exec(&parsed),
        "profile" => commands::profile::exec(&parsed),
        "serve" => commands::serve::exec(&parsed),
        "drive" => commands::drive::exec(&parsed),
        "analyze" => commands::analyze::exec(&parsed),
        "gen" => commands::gen::exec(&parsed),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", commands::USAGE)),
    };
    match result.and_then(|()| parsed.finish()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
