#!/bin/sh
# Regenerates every experiment log in experiment_logs/ from the release
# binaries (run `cargo build --release --workspace` first).
set -e
cd "$(dirname "$0")"
mkdir -p experiment_logs
for e in e1_rand_green e2_box_distribution e3_rand_par e4_det_par \
         e5_well_rounded e6_mean_completion e7_lower_bound e8_baselines \
         e9_ablations e10_chunk_balance e11_engine_scaling e12_sharing \
         e13_replacement e14_static_opt e15_model_critique e16_micro_exact; do
  n=${e%%_*}
  echo "running $e -> experiment_logs/$n.txt"
  ./target/release/exp_"$e" > experiment_logs/"$n".txt 2>&1
done
echo all experiments regenerated
