//! Quickstart: run the paper's algorithms on a small heterogeneous
//! workload and compare makespans against a lower bound on OPT.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use parapage::prelude::*;

fn main() {
    // Model: 8 processors sharing a 128-page cache, miss penalty 16.
    let params = ModelParams::new(8, 128, 16);
    println!("model: {params}\n");

    // A heterogeneous mix: small loops, large loops, a fresh stream, a Zipf
    // hotspot, and a phase-changing processor — the kind of mixture whose
    // marginal cache benefits the paper's introduction discusses.
    let len = 6_000;
    let specs = vec![
        SeqSpec::Cyclic { width: 8, len },
        SeqSpec::Cyclic { width: 24, len },
        SeqSpec::Cyclic { width: 96, len },
        SeqSpec::Fresh { len },
        SeqSpec::Zipf {
            universe: 256,
            theta: 0.9,
            len,
        },
        SeqSpec::Uniform { universe: 64, len },
        SeqSpec::Phased {
            phases: vec![(8, len / 2), (64, len / 2)],
        },
        SeqSpec::Drift {
            width: 32,
            drift: 0.02,
            len,
        },
    ];
    let workload = build_workload(&specs, 7);
    assert!(workload.is_disjoint());

    // A certified lower bound on the optimal makespan.
    let lb = opt_lower_bound(workload.seqs(), params.k, params.s);
    println!("T_OPT lower bound: {lb}\n");

    let mut table = Table::new(["policy", "makespan", "vs LB", "mean completion", "peak mem"]);

    let add = |table: &mut Table, name: &str, result: RunResult| {
        table.row([
            name.to_string(),
            result.makespan.to_string(),
            format!("{:.2}x", result.makespan as f64 / lb as f64),
            format!("{:.0}", result.mean_completion()),
            result.peak_memory.to_string(),
        ]);
    };

    let opts = EngineOpts::default();

    let mut det = DetPar::new(&params);
    add(
        &mut table,
        "DET-PAR",
        run_engine(&mut det, workload.seqs(), &params, &opts).unwrap(),
    );

    let mut rnd = RandPar::new(&params, 42);
    add(
        &mut table,
        "RAND-PAR",
        run_engine(&mut rnd, workload.seqs(), &params, &opts).unwrap(),
    );

    let mut stat = StaticPartition::new(&params);
    add(
        &mut table,
        "STATIC-EQUAL",
        run_engine(&mut stat, workload.seqs(), &params, &opts).unwrap(),
    );

    let mut prop = PropMissPartition::new(&params);
    add(
        &mut table,
        "PROP-MISS",
        run_engine(&mut prop, workload.seqs(), &params, &opts).unwrap(),
    );

    add(
        &mut table,
        "SHARED-LRU",
        run_shared_lru(workload.seqs(), params.k, params.s),
    );

    println!("{table}");
    println!("(\"vs LB\" is an upper bound on each policy's competitive ratio here)");
}
