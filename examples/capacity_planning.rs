//! Capacity planning with the analysis toolkit: how much shared cache do
//! these jobs need, and what does partitioning policy buy at each size?
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use parapage::analysis::static_opt_makespan;
use parapage::prelude::*;

fn main() {
    let p = 6usize;
    let s = 16u64;
    let len = 5000;
    // The job mix under study.
    let specs = vec![
        SeqSpec::Cyclic { width: 12, len },
        SeqSpec::Cyclic { width: 40, len },
        SeqSpec::Zipf {
            universe: 96,
            theta: 0.9,
            len,
        },
        SeqSpec::Cyclic { width: 28, len },
        SeqSpec::Phased {
            phases: vec![(8, len / 2), (48, len / 2)],
        },
        SeqSpec::Uniform { universe: 24, len },
    ];
    let workload = build_workload(&specs, 11);

    // Per-job cache appetite: the knee of each miss curve.
    println!("per-job appetite (miss curve knees):\n");
    let mut t = Table::new(["job", "distinct pages", "pages for <1% misses", "curve"]);
    for (x, seq) in workload.seqs().iter().enumerate() {
        let curve = miss_curve(seq, 128);
        let knee = (1..=128)
            .find(|&c| (curve.misses(c) as f64) / (seq.len() as f64) < 0.01)
            .unwrap_or(128);
        let samples: Vec<f64> = (1..=16)
            .map(|i| curve.misses((128 * i / 16).max(1)) as f64)
            .collect();
        t.row([
            format!("J{x}"),
            curve.distinct_pages().to_string(),
            knee.to_string(),
            sparkline(&samples),
        ]);
    }
    println!("{t}");

    // Sweep the cache size: what does each policy deliver?
    println!("cache-size sweep (makespan):\n");
    let mut t2 = Table::new([
        "k",
        "OPT-STATIC (oracle)",
        "DET-PAR",
        "STATIC-EQUAL",
        "DET vs oracle",
    ]);
    for &k in &[64usize, 128, 256, 512] {
        let params = ModelParams::new(p, k, s);
        let oracle = static_opt_makespan(workload.seqs(), k, s).objective;
        let mut det = DetPar::new(&params);
        let det_ms = run_engine(&mut det, workload.seqs(), &params, &EngineOpts::default())
            .unwrap()
            .makespan;
        let mut st = StaticPartition::new(&params);
        let st_ms = run_engine(&mut st, workload.seqs(), &params, &EngineOpts::default())
            .unwrap()
            .makespan;
        t2.row([
            k.to_string(),
            oracle.to_string(),
            det_ms.to_string(),
            st_ms.to_string(),
            format!("{:.2}", det_ms as f64 / oracle as f64),
        ]);
    }
    println!("{t2}");
    println!(
        "Reading: the oracle knows the workloads in advance; DET-PAR is online\n\
         and oblivious, yet tracks it — and the gap to STATIC-EQUAL is the\n\
         price of not adapting at all."
    );
}
