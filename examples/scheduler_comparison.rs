//! Scheduler shoot-out across workload families: how the paper's oblivious
//! algorithms compare to practical baselines on non-adversarial inputs.
//!
//! ```sh
//! cargo run --release --example scheduler_comparison
//! ```

use parapage::prelude::*;

fn mixed(p: usize, len: usize, k: usize) -> Vec<SeqSpec> {
    (0..p)
        .map(|x| match x % 4 {
            0 => SeqSpec::Cyclic { width: k / 16, len },
            1 => SeqSpec::Cyclic { width: k / 2, len },
            2 => SeqSpec::Zipf {
                universe: k,
                theta: 0.9,
                len,
            },
            _ => SeqSpec::Phased {
                phases: vec![(k / 16, len / 2), (k / 2, len / 2)],
            },
        })
        .collect()
}

fn skewed(p: usize, len: usize, k: usize) -> Vec<SeqSpec> {
    // One cache-hungry processor among small loops.
    (0..p)
        .map(|x| {
            if x == 0 {
                SeqSpec::Cyclic {
                    width: 3 * k / 4,
                    len,
                }
            } else {
                SeqSpec::Cyclic { width: 4, len }
            }
        })
        .collect()
}

fn uniform_small(p: usize, len: usize, k: usize) -> Vec<SeqSpec> {
    (0..p)
        .map(|_| SeqSpec::Uniform {
            universe: 2 * k / p,
            len,
        })
        .collect()
}

fn main() {
    let p = 8;
    let k = 128;
    let s = 16;
    let len = 8_000;
    let params = ModelParams::new(p, k, s);

    let families: Vec<(&str, Vec<SeqSpec>)> = vec![
        ("mixed", mixed(p, len, k)),
        ("skewed", skewed(p, len, k)),
        ("uniform", uniform_small(p, len, k)),
    ];

    for (name, specs) in families {
        let workload = build_workload(&specs, 3);
        let lb = opt_lower_bound(workload.seqs(), k, s);
        println!("== workload `{name}`  (T_OPT lower bound {lb}) ==");
        let mut table = Table::new(["policy", "makespan", "vs LB", "mean compl", "miss %"]);
        let opts = EngineOpts::default();

        let mut results: Vec<(&str, RunResult)> = Vec::new();
        let mut det = DetPar::new(&params);
        results.push((
            "DET-PAR",
            run_engine(&mut det, workload.seqs(), &params, &opts).unwrap(),
        ));
        let mut rnd = RandPar::new(&params, 5);
        results.push((
            "RAND-PAR",
            run_engine(&mut rnd, workload.seqs(), &params, &opts).unwrap(),
        ));
        let mut st = StaticPartition::new(&params);
        results.push((
            "STATIC-EQUAL",
            run_engine(&mut st, workload.seqs(), &params, &opts).unwrap(),
        ));
        let mut pm = PropMissPartition::new(&params);
        results.push((
            "PROP-MISS",
            run_engine(&mut pm, workload.seqs(), &params, &opts).unwrap(),
        ));
        results.push(("SHARED-LRU", run_shared_lru(workload.seqs(), k, s)));

        for (pname, r) in results {
            table.row([
                pname.to_string(),
                r.makespan.to_string(),
                format!("{:.2}x", r.makespan as f64 / lb as f64),
                format!("{:.0}", r.mean_completion()),
                format!("{:.1}", 100.0 * r.stats.miss_ratio()),
            ]);
        }
        println!("{table}");
    }
}
