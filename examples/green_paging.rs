//! Green paging on a single processor: RAND-GREEN (Theorem 1) and the
//! deterministic doubling baseline versus the exact offline optimum.
//!
//! ```sh
//! cargo run --release --example green_paging
//! ```

use parapage::prelude::*;

fn main() {
    let mut table = Table::new([
        "p",
        "k",
        "OPT impact",
        "RAND-GREEN",
        "ratio",
        "ADAPT-GREEN",
        "ratio",
    ]);

    // A phase-changing sequence: tiny loop, huge loop, medium loop — the
    // green pager must track the working set to stay competitive.
    for &(p, k) in &[(4usize, 32usize), (8, 64), (16, 128), (32, 256)] {
        let params = ModelParams::new(p, k, 16);
        let seq = {
            let mut b = SeqBuilder::new(ProcId(0), 11);
            b.cyclic(4, 2000)
                .cyclic(3 * k / 4, 4000)
                .cyclic(k / 8, 2000);
            b.build()
        };

        let opt = green_opt_normalized(&seq, &params);

        // RAND-GREEN, averaged over seeds.
        let mut rg_ratios = Vec::new();
        for seed in 0..8 {
            let run = run_green(&mut RandGreen::new(&params, seed), &seq, &params);
            rg_ratios.push(run.impact as f64 / opt.impact as f64);
        }
        let rg = summarize(&rg_ratios);

        let ad_run = run_green(&mut AdaptiveGreen::new(&params), &seq, &params);
        let ad_ratio = ad_run.impact as f64 / opt.impact as f64;

        let rg_impact = (rg.mean * opt.impact as f64) as u128;
        table.row([
            p.to_string(),
            k.to_string(),
            opt.impact.to_string(),
            rg_impact.to_string(),
            format!("{:.2}±{:.2}", rg.mean, rg.ci95),
            ad_run.impact.to_string(),
            format!("{ad_ratio:.2}"),
        ]);
    }

    println!("{table}");
    println!("Theorem 1: RAND-GREEN's expected ratio is O(log p).");
}
