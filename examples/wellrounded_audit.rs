//! Inspect DET-PAR's allocation structure: phases, the well-roundedness
//! audit, and a sparkline of one processor's allocated heights over time.
//!
//! ```sh
//! cargo run --release --example wellrounded_audit
//! ```

use parapage::prelude::*;

fn main() {
    let p = 8usize;
    let k = 128;
    let params = ModelParams::new(p, k, 16);
    let specs: Vec<SeqSpec> = (0..p)
        .map(|x| SeqSpec::Cyclic {
            width: 4 << (x % 4),
            len: 3000 + 500 * x,
        })
        .collect();
    let w = build_workload(&specs, 9);

    let mut det = DetPar::new(&params);
    let opts = EngineOpts {
        record_timelines: true,
        memory_limit: Some(parapage::core::DetPar::MEMORY_FACTOR * k),
        ..Default::default()
    };
    let res = run_engine(&mut det, w.seqs(), &params, &opts).unwrap();

    println!(
        "makespan {}   peak memory {} (= {:.2}k)\n",
        res.makespan,
        res.peak_memory,
        res.peak_memory as f64 / k as f64
    );

    println!("phases:");
    let mut table = Table::new(["#", "start", "base height", "roster"]);
    for (i, ph) in det.phases().iter().enumerate() {
        table.row([
            i.to_string(),
            ph.start.to_string(),
            ph.base_height.to_string(),
            ph.roster_len.to_string(),
        ]);
    }
    println!("{table}");

    let report = check_well_rounded(
        res.timelines.as_ref().unwrap(),
        &res.completions,
        det.phases(),
        &params,
        4.0,
    );
    println!(
        "well-rounded: {}   max gap factor {:.3} (Lemma 6 guarantees O(1))",
        report.ok, report.max_gap_factor
    );
    for v in report.violations.iter().take(5) {
        println!("  violation: {v}");
    }

    // Height-over-time sparkline for processor 0, sampled at 80 points.
    let tl = &res.timelines.as_ref().unwrap()[0];
    let horizon = res.completions[0].max(1);
    let samples: Vec<f64> = (0..80)
        .map(|i| {
            let t = horizon * i / 80;
            tl.iter()
                .find(|iv| iv.start <= t && t < iv.end)
                .map(|iv| iv.height as f64)
                .unwrap_or(0.0)
        })
        .collect();
    println!(
        "\nP0 allocated height over its lifetime (min {} .. max {}):",
        samples.iter().cloned().fold(f64::INFINITY, f64::min) as u64,
        samples.iter().cloned().fold(0.0f64, f64::max) as u64
    );
    println!("{}", sparkline(&samples));
}
