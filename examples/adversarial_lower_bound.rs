//! Theorem 4 in action: on the paper's adversarial instances, *every*
//! online pager that allocates green-paging boxes — the explicit black-box
//! packer BB-GREEN, but also DET-PAR and RAND-PAR, which Corollaries 1–2
//! show are themselves of that form — is forced to crawl through the
//! polluted prefixes at miss speed, while the offline Lemma-8 schedule runs
//! them at full memory nearly miss-free. The measured ratio therefore grows
//! with `p` (toward the theorem's `Ω(log p / log log p)`), for all of them.
//!
//! ```sh
//! cargo run --release --example adversarial_lower_bound
//! ```

use parapage::prelude::*;

fn main() {
    let mut table = Table::new([
        "p",
        "k",
        "OPT(Lemma8)",
        "DET-PAR",
        "RAND-PAR",
        "BB-GREEN",
        "BB/OPT",
        "DET/OPT",
    ]);

    for &(p, k) in &[(8usize, 32usize), (16, 64), (32, 128), (64, 256)] {
        // Theorem 4 wants a large miss penalty (`s > ck`); scale s with k.
        let cfg = AdversarialConfig::scaled(p, k, k as u64, 0.05);
        let inst = AdversarialInstance::build(cfg);
        let params = cfg.params();
        let seqs = inst.workload.seqs();
        let opts = EngineOpts::default();

        let opt = lemma8_makespan(&inst).makespan();

        let mut det = DetPar::new(&params);
        let det_ms = run_engine(&mut det, seqs, &params, &opts).unwrap().makespan;

        let mut rnd = RandPar::new(&params, 1);
        let rnd_ms = run_engine(&mut rnd, seqs, &params, &opts).unwrap().makespan;

        let pagers: Vec<RandGreen> = (0..p as u64)
            .map(|i| RandGreen::new(&params, 1000 + i))
            .collect();
        let mut bb = BlackboxGreenPacker::new(&params, pagers);
        let bb_ms = run_engine(&mut bb, seqs, &params, &opts).unwrap().makespan;

        table.row([
            p.to_string(),
            k.to_string(),
            opt.to_string(),
            det_ms.to_string(),
            rnd_ms.to_string(),
            bb_ms.to_string(),
            format!("{:.2}", bb_ms as f64 / opt as f64),
            format!("{:.2}", det_ms as f64 / opt as f64),
        ]);
    }

    println!("{table}");
    println!(
        "Theorem 4: being green forces a ratio growing like log p / log log p\n\
         on these instances — for BB-GREEN and equally for DET-PAR/RAND-PAR\n\
         (Corollaries 1-2: they are green black-box algorithms themselves,\n\
         and log p / log log p is below their O(log p) guarantee)."
    );
}
